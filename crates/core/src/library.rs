//! A standard-cell style library of secure differential gates.
//!
//! The paper motivates its method with the observation that SABL had only
//! been demonstrated for gates "with two or fewer inputs"; the systematic
//! construction makes a *library* of arbitrary fully connected gates
//! possible.  This module enumerates the usual combinational standard cells
//! and builds the genuine, fully connected and enhanced DPDN for each one.

use std::fmt;

use dpl_logic::{parse_expr, Expr, Namespace};

use crate::dpdn::Dpdn;
use crate::error::DpdnError;
use crate::Result;

/// The combinational gates of the standard library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GateKind {
    /// Buffer / inverter pair (single literal).
    Buf,
    /// 2-input AND / NAND.
    And2,
    /// 3-input AND / NAND.
    And3,
    /// 4-input AND / NAND.
    And4,
    /// 2-input OR / NOR.
    Or2,
    /// 3-input OR / NOR.
    Or3,
    /// 4-input OR / NOR.
    Or4,
    /// 2-input XOR / XNOR.
    Xor2,
    /// 3-input XOR / XNOR.
    Xor3,
    /// 2-to-1 multiplexer.
    Mux2,
    /// AND-OR-invert 21.
    Aoi21,
    /// AND-OR-invert 22.
    Aoi22,
    /// OR-AND-invert 21.
    Oai21,
    /// OR-AND-invert 22 — the paper's Fig. 5 design example.
    Oai22,
    /// 3-input majority (carry) gate.
    Maj3,
    /// Full-adder sum gate (3-input XOR).
    Sum3,
    /// AND of an input with an inverted input (used in S-box logic).
    AndNot,
    /// 2-input OR feeding a 2-input AND (`(A+B).C`).
    OrAnd21,
}

impl GateKind {
    /// Every gate of the standard library.
    pub fn all() -> &'static [GateKind] {
        &[
            GateKind::Buf,
            GateKind::And2,
            GateKind::And3,
            GateKind::And4,
            GateKind::Or2,
            GateKind::Or3,
            GateKind::Or4,
            GateKind::Xor2,
            GateKind::Xor3,
            GateKind::Mux2,
            GateKind::Aoi21,
            GateKind::Aoi22,
            GateKind::Oai21,
            GateKind::Oai22,
            GateKind::Maj3,
            GateKind::Sum3,
            GateKind::AndNot,
            GateKind::OrAnd21,
        ]
    }

    /// The library name of the gate.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Buf => "BUF",
            GateKind::And2 => "AND2",
            GateKind::And3 => "AND3",
            GateKind::And4 => "AND4",
            GateKind::Or2 => "OR2",
            GateKind::Or3 => "OR3",
            GateKind::Or4 => "OR4",
            GateKind::Xor2 => "XOR2",
            GateKind::Xor3 => "XOR3",
            GateKind::Mux2 => "MUX2",
            GateKind::Aoi21 => "AOI21",
            GateKind::Aoi22 => "AOI22",
            GateKind::Oai21 => "OAI21",
            GateKind::Oai22 => "OAI22",
            GateKind::Maj3 => "MAJ3",
            GateKind::Sum3 => "SUM3",
            GateKind::AndNot => "ANDNOT",
            GateKind::OrAnd21 => "ORAND21",
        }
    }

    /// The defining Boolean formula in the crate's expression syntax.
    ///
    /// In dynamic differential logic both polarities of the output are
    /// produced, so AND2 serves as both AND and NAND, etc.
    pub fn formula(self) -> &'static str {
        match self {
            GateKind::Buf => "A",
            GateKind::And2 => "A.B",
            GateKind::And3 => "A.B.C",
            GateKind::And4 => "A.B.C.D",
            GateKind::Or2 => "A+B",
            GateKind::Or3 => "A+B+C",
            GateKind::Or4 => "A+B+C+D",
            GateKind::Xor2 => "A^B",
            GateKind::Xor3 => "A^B^C",
            GateKind::Mux2 => "S.A + !S.B",
            GateKind::Aoi21 => "A.B + C",
            GateKind::Aoi22 => "A.B + C.D",
            GateKind::Oai21 => "(A+B).C",
            GateKind::Oai22 => "(A+B).(C+D)",
            GateKind::Maj3 => "A.B + A.C + B.C",
            GateKind::Sum3 => "A^B^C",
            GateKind::AndNot => "A.!B",
            GateKind::OrAnd21 => "(A+B).C",
        }
    }

    /// Parses the defining formula, returning the expression and the input
    /// namespace.
    pub fn expression(self) -> (Expr, Namespace) {
        parse_expr(self.formula()).expect("library formulas are well formed")
    }

    /// Looks a gate up by library name (case insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`DpdnError::UnknownGate`] for unrecognised names.
    pub fn by_name(name: &str) -> Result<GateKind> {
        let upper = name.to_ascii_uppercase();
        GateKind::all()
            .iter()
            .copied()
            .find(|k| k.name() == upper)
            .ok_or(DpdnError::UnknownGate { name: name.into() })
    }

    /// Number of gate inputs.
    pub fn input_count(self) -> usize {
        let (_, ns) = self.expression();
        ns.len()
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One library entry: the three DPDN flavours of a gate.
#[derive(Debug, Clone)]
pub struct LibraryCell {
    /// Which gate this is.
    pub kind: GateKind,
    /// The conventional (memory-effect afflicted) network.
    pub genuine: Dpdn,
    /// The fully connected network of §4.
    pub fully_connected: Dpdn,
    /// The enhanced network of §5.
    pub enhanced: Dpdn,
}

impl LibraryCell {
    /// Builds all three flavours of `kind`.
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors (none are expected for library gates).
    pub fn build(kind: GateKind) -> Result<Self> {
        let (expr, ns) = kind.expression();
        Ok(LibraryCell {
            kind,
            genuine: Dpdn::genuine(&expr, &ns)?,
            fully_connected: Dpdn::fully_connected(&expr, &ns)?,
            enhanced: Dpdn::fully_connected_enhanced(&expr, &ns)?,
        })
    }

    /// The transistor-count overhead of the enhanced network relative to the
    /// genuine network.
    pub fn enhancement_overhead(&self) -> usize {
        self.enhanced.device_count() - self.genuine.device_count()
    }
}

/// The complete secure gate library.
#[derive(Debug, Clone)]
pub struct GateLibrary {
    cells: Vec<LibraryCell>,
}

impl GateLibrary {
    /// Builds every gate of [`GateKind::all`].
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors (none are expected for library gates).
    pub fn standard() -> Result<Self> {
        let cells = GateKind::all()
            .iter()
            .copied()
            .map(LibraryCell::build)
            .collect::<Result<Vec<_>>>()?;
        Ok(GateLibrary { cells })
    }

    /// The cells of the library.
    pub fn cells(&self) -> &[LibraryCell] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Finds a cell by gate kind.
    pub fn cell(&self, kind: GateKind) -> Option<&LibraryCell> {
        self.cells.iter().find(|c| c.kind == kind)
    }

    /// Total number of transistors across all fully connected cells.
    pub fn total_fully_connected_devices(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.fully_connected.device_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;

    #[test]
    fn all_gates_have_valid_formulas() {
        for &kind in GateKind::all() {
            let (expr, ns) = kind.expression();
            assert!(!ns.is_empty(), "{kind} has no inputs");
            assert!(!expr.is_constant(), "{kind} is constant");
            assert_eq!(kind.input_count(), ns.len());
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(GateKind::by_name("oai22").unwrap(), GateKind::Oai22);
        assert_eq!(GateKind::by_name("AND2").unwrap(), GateKind::And2);
        assert!(matches!(
            GateKind::by_name("NAND17"),
            Err(DpdnError::UnknownGate { .. })
        ));
        assert_eq!(GateKind::Oai22.to_string(), "OAI22");
    }

    #[test]
    fn every_library_cell_is_fully_connected_and_correct() {
        let library = GateLibrary::standard().unwrap();
        assert_eq!(library.len(), GateKind::all().len());
        assert!(!library.is_empty());
        for cell in library.cells() {
            let fc = verify(&cell.fully_connected).unwrap();
            assert!(
                fc.is_fully_connected(),
                "{} fully connected network is not fully connected",
                cell.kind
            );
            assert!(
                fc.is_functionally_correct(),
                "{} fully connected network is functionally wrong",
                cell.kind
            );
            let enh = verify(&cell.enhanced).unwrap();
            assert!(enh.is_fully_connected(), "{} enhanced", cell.kind);
            assert!(enh.has_constant_depth(), "{} enhanced depth", cell.kind);
            assert!(
                enh.is_free_of_early_propagation(),
                "{} enhanced early propagation",
                cell.kind
            );
        }
    }

    #[test]
    fn multi_input_genuine_gates_are_usually_not_fully_connected() {
        // Every gate with an internal node in its genuine network must fail
        // the full-connectivity check (that is the point of the paper).
        let library = GateLibrary::standard().unwrap();
        for cell in library.cells() {
            if cell.genuine.internal_nodes().is_empty() {
                continue;
            }
            let report = verify(&cell.genuine).unwrap();
            assert!(
                !report.is_fully_connected(),
                "{} genuine network is unexpectedly fully connected",
                cell.kind
            );
        }
    }

    #[test]
    fn library_statistics() {
        let library = GateLibrary::standard().unwrap();
        assert!(library.total_fully_connected_devices() > 0);
        let cell = library.cell(GateKind::Oai22).unwrap();
        assert_eq!(cell.fully_connected.device_count(), 8);
        assert!(cell.enhancement_overhead() > 0);
        assert!(library.cell(GateKind::And2).is_some());
    }
}

//! A standard-cell style library of secure differential gates.
//!
//! The paper motivates its method with the observation that SABL had only
//! been demonstrated for gates "with two or fewer inputs"; the systematic
//! construction makes a *library* of arbitrary fully connected gates
//! possible.  This module enumerates the usual combinational standard cells
//! and builds the genuine, fully connected and enhanced DPDN for each one.

use std::fmt;
use std::sync::OnceLock;

use dpl_logic::{parse_expr, Expr, Namespace};

use crate::dpdn::Dpdn;
use crate::error::DpdnError;
use crate::Result;

/// The largest number of inputs any library gate has.
pub const MAX_GATE_INPUTS: usize = 4;

/// The combinational gates of the standard library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GateKind {
    /// Buffer / inverter pair (single literal).
    Buf,
    /// 2-input AND / NAND.
    And2,
    /// 3-input AND / NAND.
    And3,
    /// 4-input AND / NAND.
    And4,
    /// 2-input OR / NOR.
    Or2,
    /// 3-input OR / NOR.
    Or3,
    /// 4-input OR / NOR.
    Or4,
    /// 2-input XOR / XNOR.
    Xor2,
    /// 3-input XOR / XNOR.
    Xor3,
    /// 2-to-1 multiplexer.
    Mux2,
    /// AND-OR-invert 21.
    Aoi21,
    /// AND-OR-invert 22.
    Aoi22,
    /// OR-AND-invert 21.
    Oai21,
    /// OR-AND-invert 22 — the paper's Fig. 5 design example.
    Oai22,
    /// 3-input majority (carry) gate.
    Maj3,
    /// Full-adder sum gate (3-input XOR).
    Sum3,
    /// AND of an input with an inverted input (used in S-box logic).
    AndNot,
    /// 2-input OR feeding a 2-input AND (`(A+B).C`).
    OrAnd21,
}

impl GateKind {
    /// Every gate of the standard library.
    pub fn all() -> &'static [GateKind] {
        &[
            GateKind::Buf,
            GateKind::And2,
            GateKind::And3,
            GateKind::And4,
            GateKind::Or2,
            GateKind::Or3,
            GateKind::Or4,
            GateKind::Xor2,
            GateKind::Xor3,
            GateKind::Mux2,
            GateKind::Aoi21,
            GateKind::Aoi22,
            GateKind::Oai21,
            GateKind::Oai22,
            GateKind::Maj3,
            GateKind::Sum3,
            GateKind::AndNot,
            GateKind::OrAnd21,
        ]
    }

    /// The library name of the gate.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Buf => "BUF",
            GateKind::And2 => "AND2",
            GateKind::And3 => "AND3",
            GateKind::And4 => "AND4",
            GateKind::Or2 => "OR2",
            GateKind::Or3 => "OR3",
            GateKind::Or4 => "OR4",
            GateKind::Xor2 => "XOR2",
            GateKind::Xor3 => "XOR3",
            GateKind::Mux2 => "MUX2",
            GateKind::Aoi21 => "AOI21",
            GateKind::Aoi22 => "AOI22",
            GateKind::Oai21 => "OAI21",
            GateKind::Oai22 => "OAI22",
            GateKind::Maj3 => "MAJ3",
            GateKind::Sum3 => "SUM3",
            GateKind::AndNot => "ANDNOT",
            GateKind::OrAnd21 => "ORAND21",
        }
    }

    /// The defining Boolean formula in the crate's expression syntax.
    ///
    /// In dynamic differential logic both polarities of the output are
    /// produced, so AND2 serves as both AND and NAND, etc.
    pub fn formula(self) -> &'static str {
        match self {
            GateKind::Buf => "A",
            GateKind::And2 => "A.B",
            GateKind::And3 => "A.B.C",
            GateKind::And4 => "A.B.C.D",
            GateKind::Or2 => "A+B",
            GateKind::Or3 => "A+B+C",
            GateKind::Or4 => "A+B+C+D",
            GateKind::Xor2 => "A^B",
            GateKind::Xor3 => "A^B^C",
            GateKind::Mux2 => "S.A + !S.B",
            GateKind::Aoi21 => "A.B + C",
            GateKind::Aoi22 => "A.B + C.D",
            GateKind::Oai21 => "(A+B).C",
            GateKind::Oai22 => "(A+B).(C+D)",
            GateKind::Maj3 => "A.B + A.C + B.C",
            GateKind::Sum3 => "A^B^C",
            GateKind::AndNot => "A.!B",
            GateKind::OrAnd21 => "(A+B).C",
        }
    }

    /// Parses the defining formula, returning the expression and the input
    /// namespace.
    pub fn expression(self) -> (Expr, Namespace) {
        parse_expr(self.formula()).expect("library formulas are well formed")
    }

    /// Looks a gate up by library name (case insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`DpdnError::UnknownGate`] for unrecognised names.
    pub fn by_name(name: &str) -> Result<GateKind> {
        let upper = name.to_ascii_uppercase();
        GateKind::all()
            .iter()
            .copied()
            .find(|k| k.name() == upper)
            .ok_or(DpdnError::UnknownGate { name: name.into() })
    }

    /// Number of gate inputs.
    pub fn input_count(self) -> usize {
        let (_, ns) = self.expression();
        ns.len()
    }

    /// Number of cells in the library (`GateKind::all().len()` as a
    /// constant, for fixed-size lookup tables).
    pub const COUNT: usize = 18;

    /// Dense discriminant of the gate, suitable for array-indexed lookup
    /// tables (`GateKind::all()[kind.index()] == kind`).
    pub const fn index(self) -> usize {
        match self {
            GateKind::Buf => 0,
            GateKind::And2 => 1,
            GateKind::And3 => 2,
            GateKind::And4 => 3,
            GateKind::Or2 => 4,
            GateKind::Or3 => 5,
            GateKind::Or4 => 6,
            GateKind::Xor2 => 7,
            GateKind::Xor3 => 8,
            GateKind::Mux2 => 9,
            GateKind::Aoi21 => 10,
            GateKind::Aoi22 => 11,
            GateKind::Oai21 => 12,
            GateKind::Oai22 => 13,
            GateKind::Maj3 => 14,
            GateKind::Sum3 => 15,
            GateKind::AndNot => 16,
            GateKind::OrAnd21 => 17,
        }
    }

    /// Number of gate inputs as a constant (equal to
    /// [`GateKind::input_count`], without parsing the formula — the hot
    /// paths of the bitsliced simulator depend on it).
    pub const fn arity(self) -> usize {
        match self {
            GateKind::Buf => 1,
            GateKind::And2 | GateKind::Or2 | GateKind::Xor2 | GateKind::AndNot => 2,
            GateKind::And3
            | GateKind::Or3
            | GateKind::Xor3
            | GateKind::Mux2
            | GateKind::Aoi21
            | GateKind::Oai21
            | GateKind::Maj3
            | GateKind::Sum3
            | GateKind::OrAnd21 => 3,
            GateKind::And4 | GateKind::Or4 | GateKind::Aoi22 | GateKind::Oai22 => 4,
        }
    }

    /// The gate's truth table, one bit per input assignment: bit `a` is the
    /// function value for the bit-packed assignment `a`, where input slot
    /// `i` of the gate is variable `i` of [`GateKind::formula`] in order of
    /// first appearance (e.g. `MUX2 = S.A + !S.B` has S = bit 0, A = bit 1,
    /// B = bit 2).
    ///
    /// Tables are derived from the parsed formula once and cached, so this
    /// is cheap to call in evaluation loops.
    pub fn truth_table(self) -> u16 {
        static TABLES: OnceLock<[u16; GateKind::COUNT]> = OnceLock::new();
        TABLES.get_or_init(|| {
            let mut tables = [0u16; GateKind::COUNT];
            for &kind in GateKind::all() {
                let (expr, ns) = kind.expression();
                let mut table = 0u16;
                for assignment in 0..(1u64 << ns.len()) {
                    if expr.eval_bits(assignment) {
                        table |= 1 << assignment;
                    }
                }
                tables[kind.index()] = table;
            }
            tables
        })[self.index()]
    }

    /// Evaluates the gate on a bit-packed input assignment (bit `i` =
    /// input slot `i`, in the slot order of [`GateKind::truth_table`]);
    /// bits beyond the gate's arity are ignored.
    pub fn eval(self, assignment: u64) -> bool {
        let mask = (1u64 << self.arity()) - 1;
        (self.truth_table() >> (assignment & mask)) & 1 == 1
    }

    /// Evaluates the gate on bit-packed words, one independent evaluation
    /// per bit lane.  `inputs[i]` carries input slot `i` (the slot order of
    /// [`GateKind::truth_table`]); slots beyond the gate's arity are
    /// ignored.
    pub fn eval_word(self, inputs: [u64; MAX_GATE_INPUTS]) -> u64 {
        let [a, b, c, d] = inputs;
        match self {
            GateKind::Buf => a,
            GateKind::And2 => a & b,
            GateKind::And3 => a & b & c,
            GateKind::And4 => a & b & c & d,
            GateKind::Or2 => a | b,
            GateKind::Or3 => a | b | c,
            GateKind::Or4 => a | b | c | d,
            GateKind::Xor2 => a ^ b,
            GateKind::Xor3 | GateKind::Sum3 => a ^ b ^ c,
            // MUX2 = S.A + !S.B with S = slot 0, A = slot 1, B = slot 2.
            GateKind::Mux2 => (a & b) | (!a & c),
            GateKind::Aoi21 => (a & b) | c,
            GateKind::Aoi22 => (a & b) | (c & d),
            GateKind::Oai21 | GateKind::OrAnd21 => (a | b) & c,
            GateKind::Oai22 => (a | b) & (c | d),
            GateKind::Maj3 => (a & b) | (a & c) | (b & c),
            GateKind::AndNot => a & !b,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One library entry: the three DPDN flavours of a gate.
#[derive(Debug, Clone)]
pub struct LibraryCell {
    /// Which gate this is.
    pub kind: GateKind,
    /// The conventional (memory-effect afflicted) network.
    pub genuine: Dpdn,
    /// The fully connected network of §4.
    pub fully_connected: Dpdn,
    /// The enhanced network of §5.
    pub enhanced: Dpdn,
}

impl LibraryCell {
    /// Builds all three flavours of `kind`.
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors (none are expected for library gates).
    pub fn build(kind: GateKind) -> Result<Self> {
        let (expr, ns) = kind.expression();
        Ok(LibraryCell {
            kind,
            genuine: Dpdn::genuine(&expr, &ns)?,
            fully_connected: Dpdn::fully_connected(&expr, &ns)?,
            enhanced: Dpdn::fully_connected_enhanced(&expr, &ns)?,
        })
    }

    /// The transistor-count overhead of the enhanced network relative to the
    /// genuine network.
    pub fn enhancement_overhead(&self) -> usize {
        self.enhanced.device_count() - self.genuine.device_count()
    }
}

/// The complete secure gate library.
#[derive(Debug, Clone)]
pub struct GateLibrary {
    cells: Vec<LibraryCell>,
}

impl GateLibrary {
    /// Builds every gate of [`GateKind::all`].
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors (none are expected for library gates).
    pub fn standard() -> Result<Self> {
        let cells = GateKind::all()
            .iter()
            .copied()
            .map(LibraryCell::build)
            .collect::<Result<Vec<_>>>()?;
        Ok(GateLibrary { cells })
    }

    /// The cells of the library.
    pub fn cells(&self) -> &[LibraryCell] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Finds a cell by gate kind.
    pub fn cell(&self, kind: GateKind) -> Option<&LibraryCell> {
        self.cells.iter().find(|c| c.kind == kind)
    }

    /// Total number of transistors across all fully connected cells.
    pub fn total_fully_connected_devices(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.fully_connected.device_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;

    #[test]
    fn all_gates_have_valid_formulas() {
        for &kind in GateKind::all() {
            let (expr, ns) = kind.expression();
            assert!(!ns.is_empty(), "{kind} has no inputs");
            assert!(!expr.is_constant(), "{kind} is constant");
            assert_eq!(kind.input_count(), ns.len());
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn indices_arities_and_truth_tables_are_consistent() {
        assert_eq!(GateKind::all().len(), GateKind::COUNT);
        for (i, &kind) in GateKind::all().iter().enumerate() {
            assert_eq!(kind.index(), i, "{kind}");
            assert_eq!(kind.arity(), kind.input_count(), "{kind}");
            assert!(kind.arity() <= MAX_GATE_INPUTS);
            // The cached truth table agrees with the parsed formula, and
            // eval() with it.
            let (expr, ns) = kind.expression();
            for assignment in 0..(1u64 << ns.len()) {
                let expected = expr.eval_bits(assignment);
                assert_eq!(
                    kind.truth_table() >> assignment & 1 == 1,
                    expected,
                    "{kind} assignment {assignment:04b}"
                );
                assert_eq!(kind.eval(assignment), expected);
                // Bits beyond the arity are ignored.
                assert_eq!(kind.eval(assignment | 1 << 60), expected);
            }
        }
    }

    #[test]
    fn eval_word_matches_the_formula_on_every_lane() {
        // The hand-coded word evaluators are the bitsliced hot path; the
        // formula-derived truth table is the ground truth.  Exercise every
        // assignment in a distinct lane so slot-order bugs cannot hide.
        for &kind in GateKind::all() {
            let n = kind.arity();
            let mut inputs = [0u64; MAX_GATE_INPUTS];
            for (slot, word) in inputs.iter_mut().enumerate().take(n) {
                for lane in 0..(1u64 << n) {
                    *word |= ((lane >> slot) & 1) << lane;
                }
            }
            let word = kind.eval_word(inputs);
            for lane in 0..(1u64 << n) {
                assert_eq!(
                    (word >> lane) & 1 == 1,
                    kind.eval(lane),
                    "{kind} lane {lane:04b}"
                );
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(GateKind::by_name("oai22").unwrap(), GateKind::Oai22);
        assert_eq!(GateKind::by_name("AND2").unwrap(), GateKind::And2);
        assert!(matches!(
            GateKind::by_name("NAND17"),
            Err(DpdnError::UnknownGate { .. })
        ));
        assert_eq!(GateKind::Oai22.to_string(), "OAI22");
    }

    #[test]
    fn every_library_cell_is_fully_connected_and_correct() {
        let library = GateLibrary::standard().unwrap();
        assert_eq!(library.len(), GateKind::all().len());
        assert!(!library.is_empty());
        for cell in library.cells() {
            let fc = verify(&cell.fully_connected).unwrap();
            assert!(
                fc.is_fully_connected(),
                "{} fully connected network is not fully connected",
                cell.kind
            );
            assert!(
                fc.is_functionally_correct(),
                "{} fully connected network is functionally wrong",
                cell.kind
            );
            let enh = verify(&cell.enhanced).unwrap();
            assert!(enh.is_fully_connected(), "{} enhanced", cell.kind);
            assert!(enh.has_constant_depth(), "{} enhanced depth", cell.kind);
            assert!(
                enh.is_free_of_early_propagation(),
                "{} enhanced early propagation",
                cell.kind
            );
        }
    }

    #[test]
    fn multi_input_genuine_gates_are_usually_not_fully_connected() {
        // Every gate with an internal node in its genuine network must fail
        // the full-connectivity check (that is the point of the paper).
        let library = GateLibrary::standard().unwrap();
        for cell in library.cells() {
            if cell.genuine.internal_nodes().is_empty() {
                continue;
            }
            let report = verify(&cell.genuine).unwrap();
            assert!(
                !report.is_fully_connected(),
                "{} genuine network is unexpectedly fully connected",
                cell.kind
            );
        }
    }

    #[test]
    fn library_statistics() {
        let library = GateLibrary::standard().unwrap();
        assert!(library.total_fully_connected_devices() > 0);
        let cell = library.cell(GateKind::Oai22).unwrap();
        assert_eq!(cell.fully_connected.device_count(), 8);
        assert!(cell.enhancement_overhead() > 0);
        assert!(library.cell(GateKind::And2).is_some());
    }
}

//! Deterministic random-function generators used by property tests and
//! benchmarks.
//!
//! The generators are seeded and dependency-free (a small xorshift PRNG), so
//! test failures are reproducible from the seed alone.

use dpl_logic::{Expr, Namespace, Sop, TruthTable};

/// A tiny xorshift64* pseudo random number generator.
///
/// Not cryptographically secure — it only drives test-case and workload
/// generation.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a non-zero seed (zero is mapped to a fixed
    /// constant).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (bound must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be non-zero");
        (self.next_u64() % bound as u64) as usize
    }

    /// A random boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Generates a random *read-once* expression over `num_vars` variables: every
/// variable appears exactly once, with random polarity, combined by a random
/// binary AND/OR tree.  Read-once expressions are the natural workload for
/// the paper's construction (their enhanced depth equals the input count).
pub fn random_read_once_expr(seed: u64, num_vars: usize) -> (Expr, Namespace) {
    assert!(num_vars >= 1, "need at least one variable");
    let mut rng = XorShift64::new(seed);
    let names: Vec<String> = (0..num_vars).map(|i| format!("IN{i}")).collect();
    let ns = Namespace::with_names(names);

    // Shuffle variable order.
    let mut order: Vec<usize> = (0..num_vars).collect();
    for i in (1..order.len()).rev() {
        let j = rng.below(i + 1);
        order.swap(i, j);
    }

    let mut leaves: Vec<Expr> = order
        .into_iter()
        .map(|i| {
            let var = dpl_logic::Var::new(i);
            if rng.flip() {
                Expr::var(var)
            } else {
                Expr::not_var(var)
            }
        })
        .collect();

    while leaves.len() > 1 {
        let i = rng.below(leaves.len());
        let a = leaves.swap_remove(i);
        let j = rng.below(leaves.len());
        let b = leaves.swap_remove(j);
        let combined = if rng.flip() {
            Expr::and([a, b])
        } else {
            Expr::or([a, b])
        };
        leaves.push(combined);
    }
    (leaves.pop().expect("at least one leaf"), ns)
}

/// Generates a random (non-constant) Boolean function of `num_vars` variables
/// as a sum-of-products expression extracted from a random truth table.
/// Unlike [`random_read_once_expr`], variables may repeat, which exercises
/// the construction on functions such as XOR and majority.
pub fn random_sop_expr(seed: u64, num_vars: usize) -> (Expr, Namespace) {
    assert!((1..=12).contains(&num_vars), "num_vars must be 1..=12");
    let mut rng = XorShift64::new(seed);
    let names: Vec<String> = (0..num_vars).map(|i| format!("IN{i}")).collect();
    let ns = Namespace::with_names(names);
    loop {
        let tt = TruthTable::from_fn(num_vars, |_| rng.flip()).expect("num_vars bounded by 12");
        if tt.is_zero() || tt.is_one() {
            continue;
        }
        let sop = Sop::from_truth_table(&tt);
        return (sop.to_expr(), ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_varied() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() > 10);
        let mut zero_seed = XorShift64::new(0);
        assert_ne!(zero_seed.next_u64(), 0);
    }

    #[test]
    fn below_respects_bounds() {
        let mut rng = XorShift64::new(7);
        for bound in 1..20usize {
            for _ in 0..50 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn read_once_uses_every_variable_once() {
        for seed in 0..20u64 {
            let (expr, ns) = random_read_once_expr(seed, 6);
            assert_eq!(ns.len(), 6);
            assert_eq!(expr.literal_count(), 6);
            assert_eq!(expr.support().len(), 6);
        }
    }

    #[test]
    fn read_once_is_reproducible() {
        let (a, _) = random_read_once_expr(99, 5);
        let (b, _) = random_read_once_expr(99, 5);
        assert_eq!(a, b);
        let (c, _) = random_read_once_expr(100, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn random_sop_is_not_constant() {
        for seed in 0..10u64 {
            let (expr, ns) = random_sop_expr(seed, 4);
            let tt = TruthTable::from_expr(&expr, ns.len());
            assert!(!tt.is_zero());
            assert!(!tt.is_one());
        }
    }
}

//! Verification of differential pull-down networks.
//!
//! The paper's claims about a network are structural and can be checked
//! exhaustively for gate-sized input counts:
//!
//! * **Full connectivity** (§3): for every complementary input combination,
//!   every internal node is connected to one of the module output nodes X or
//!   Y.  A violation means the node can be left floating and the gate
//!   exhibits the *memory effect*.
//! * **Functional correctness**: the X–Z branch conducts exactly when `f` is
//!   `1`, the Y–Z branch exactly when `f` is `0` — the transformation "does
//!   not alter the functionality of the individual branches".
//! * **Evaluation depth** (§5): the number of transistors in series between
//!   the conducting output node and the common node Z; the enhanced network
//!   makes this constant.
//! * **Early propagation** (§5): whether the network can start conducting
//!   before all inputs have become complementary.

use dpl_logic::TruthTable;
use dpl_netlist::{NodeId, UnionFind};

use crate::dpdn::Dpdn;
use crate::Result;

/// Maximum number of inputs for which the early-propagation analysis (which
/// enumerates 3^n partial-arrival states) is run.
pub const MAX_EARLY_PROPAGATION_INPUTS: usize = 12;

/// Connectivity of the internal nodes for one complementary input event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectivityEvent {
    /// The bit-packed input assignment of the evaluation phase.
    pub assignment: u64,
    /// Internal nodes not connected to any external node (X, Y or Z): their
    /// charge cannot flow anywhere and is remembered into the next cycle.
    pub floating: Vec<NodeId>,
    /// Internal nodes not connected to an output node (X or Y) — the paper's
    /// criterion for a network that is *not* fully connected.
    pub unconnected_to_outputs: Vec<NodeId>,
    /// Internal nodes that discharge in this event (connected to X, Y or Z).
    pub discharged: Vec<NodeId>,
}

/// Aggregated connectivity analysis over all complementary input events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectivityReport {
    events: Vec<ConnectivityEvent>,
    internal_node_count: usize,
}

impl ConnectivityReport {
    /// Per-event connectivity details.
    pub fn events(&self) -> &[ConnectivityEvent] {
        &self.events
    }

    /// Number of internal nodes of the analysed network.
    pub fn internal_node_count(&self) -> usize {
        self.internal_node_count
    }

    /// `true` when every internal node is connected to X or Y in every
    /// event — the paper's definition of a fully connected DPDN.
    pub fn is_fully_connected(&self) -> bool {
        self.events
            .iter()
            .all(|e| e.unconnected_to_outputs.is_empty())
    }

    /// `true` when some event leaves an internal node floating.
    pub fn has_floating_nodes(&self) -> bool {
        self.events.iter().any(|e| !e.floating.is_empty())
    }

    /// `true` when the set of discharged internal nodes is the same for all
    /// events — the condition for a constant internal contribution to the
    /// load capacitance.
    pub fn discharge_set_is_constant(&self) -> bool {
        let Some(first) = self.events.first() else {
            return true;
        };
        self.events.iter().all(|e| e.discharged == first.discharged)
    }

    /// The event with the largest number of problematic nodes, if any event
    /// has one.
    pub fn worst_event(&self) -> Option<&ConnectivityEvent> {
        self.events
            .iter()
            .filter(|e| !e.unconnected_to_outputs.is_empty() || !e.floating.is_empty())
            .max_by_key(|e| e.unconnected_to_outputs.len() + e.floating.len())
    }
}

/// Functional comparison of the two branches against the intended function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalReport {
    /// `true` when the X–Z conduction function equals `f`.
    pub true_branch_matches: bool,
    /// `true` when the Y–Z conduction function equals `!f`.
    pub false_branch_matches: bool,
    /// `true` when exactly one branch conducts for every input — required
    /// for the gate outputs to stay differential.
    pub exactly_one_branch_conducts: bool,
    /// The conduction function of the X–Z branch.
    pub true_conduction: TruthTable,
    /// The conduction function of the Y–Z branch.
    pub false_conduction: TruthTable,
}

impl FunctionalReport {
    /// `true` when both branches implement the intended functions and the
    /// conduction is differential.
    pub fn is_correct(&self) -> bool {
        self.true_branch_matches && self.false_branch_matches && self.exactly_one_branch_conducts
    }
}

/// Which output node discharges through the pull-down network in an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConductingBranch {
    /// The X–Z branch conducts (the gate evaluates `f = 1`).
    TrueBranch,
    /// The Y–Z branch conducts (the gate evaluates `f = 0`).
    FalseBranch,
}

/// Evaluation depth of the conducting discharge path for one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthEvent {
    /// The bit-packed input assignment.
    pub assignment: u64,
    /// Which branch conducts.
    pub branch: ConductingBranch,
    /// Transistors in series on the shortest conducting discharge path.
    pub depth: usize,
}

/// Evaluation-depth analysis over all complementary input events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthReport {
    events: Vec<DepthEvent>,
}

impl DepthReport {
    /// Per-event depth details.
    pub fn events(&self) -> &[DepthEvent] {
        &self.events
    }

    /// The smallest evaluation depth over all events.
    pub fn min_depth(&self) -> usize {
        self.events.iter().map(|e| e.depth).min().unwrap_or(0)
    }

    /// The largest evaluation depth over all events.
    pub fn max_depth(&self) -> usize {
        self.events.iter().map(|e| e.depth).max().unwrap_or(0)
    }

    /// `true` when the evaluation depth is the same for every event — the
    /// property the §5 enhancement establishes.
    pub fn is_constant(&self) -> bool {
        self.min_depth() == self.max_depth()
    }
}

/// A partial-arrival state that makes the network conduct before all inputs
/// are complementary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarlyPropagationEvent {
    /// Bit mask of the inputs that have already become complementary.
    pub arrived_mask: u64,
    /// Values of the arrived inputs (only bits inside `arrived_mask` are
    /// meaningful).
    pub values: u64,
    /// Which branch conducts prematurely.
    pub branch: ConductingBranch,
}

/// Early-propagation analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EarlyPropagationReport {
    /// `true` when the analysis was performed (small enough input count).
    pub analysed: bool,
    /// Partial-arrival states that already conduct.
    pub events: Vec<EarlyPropagationEvent>,
}

impl EarlyPropagationReport {
    /// `true` when some partial input arrival already creates a discharge
    /// path — i.e. the gate can evaluate early.
    pub fn has_early_propagation(&self) -> bool {
        !self.events.is_empty()
    }
}

/// The combined result of all verification passes.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Connectivity / memory-effect analysis.
    pub connectivity: ConnectivityReport,
    /// Functional-correctness analysis.
    pub functional: FunctionalReport,
    /// Evaluation-depth analysis.
    pub depth: DepthReport,
    /// Early-propagation analysis.
    pub early_propagation: EarlyPropagationReport,
}

impl VerificationReport {
    /// `true` when the network is fully connected in the paper's sense.
    pub fn is_fully_connected(&self) -> bool {
        self.connectivity.is_fully_connected()
    }

    /// `true` when both branches implement the intended function.
    pub fn is_functionally_correct(&self) -> bool {
        self.functional.is_correct()
    }

    /// `true` when the evaluation depth is input independent.
    pub fn has_constant_depth(&self) -> bool {
        self.depth.is_constant()
    }

    /// `true` when no partial input arrival can trigger evaluation.
    pub fn is_free_of_early_propagation(&self) -> bool {
        !self.early_propagation.has_early_propagation()
    }

    /// A one-paragraph human readable summary.
    pub fn summary(&self) -> String {
        format!(
            "fully connected: {}; functionally correct: {}; floating nodes: {}; \
             constant discharge set: {}; depth: {}..{} (constant: {}); early propagation: {}",
            self.is_fully_connected(),
            self.is_functionally_correct(),
            self.connectivity.has_floating_nodes(),
            self.connectivity.discharge_set_is_constant(),
            self.depth.min_depth(),
            self.depth.max_depth(),
            self.has_constant_depth(),
            if self.early_propagation.analysed {
                if self.early_propagation.has_early_propagation() {
                    "possible"
                } else {
                    "eliminated"
                }
            } else {
                "not analysed"
            }
        )
    }
}

/// Runs every verification pass on `dpdn`.
///
/// # Errors
///
/// Returns [`crate::DpdnError::TooManyInputs`] when the gate has more inputs
/// than can be enumerated exhaustively.
pub fn verify(dpdn: &Dpdn) -> Result<VerificationReport> {
    Ok(VerificationReport {
        connectivity: connectivity_report(dpdn)?,
        functional: functional_report(dpdn)?,
        depth: depth_report(dpdn)?,
        early_propagation: early_propagation_report(dpdn)?,
    })
}

/// Computes the connectivity report of a network.
///
/// # Errors
///
/// Returns [`crate::DpdnError::TooManyInputs`] for very wide gates.
pub fn connectivity_report(dpdn: &Dpdn) -> Result<ConnectivityReport> {
    dpdn.check_enumerable()?;
    let n = dpdn.input_count();
    let internal = dpdn.internal_nodes();
    let mut events = Vec::with_capacity(1 << n);
    for assignment in 0..(1u64 << n) {
        let mut uf = dpdn.network().connectivity(assignment);
        let x_root = uf.find(dpdn.x().index());
        let y_root = uf.find(dpdn.y().index());
        let z_root = uf.find(dpdn.z().index());
        let mut floating = Vec::new();
        let mut unconnected = Vec::new();
        let mut discharged = Vec::new();
        for &node in &internal {
            let root = uf.find(node.index());
            let to_output = root == x_root || root == y_root;
            let to_any = to_output || root == z_root;
            if !to_any {
                floating.push(node);
            }
            if !to_output {
                unconnected.push(node);
            }
            if to_any {
                discharged.push(node);
            }
        }
        events.push(ConnectivityEvent {
            assignment,
            floating,
            unconnected_to_outputs: unconnected,
            discharged,
        });
    }
    Ok(ConnectivityReport {
        events,
        internal_node_count: internal.len(),
    })
}

/// Computes the functional report of a network against its declared function.
///
/// # Errors
///
/// Returns [`crate::DpdnError::TooManyInputs`] for very wide gates.
pub fn functional_report(dpdn: &Dpdn) -> Result<FunctionalReport> {
    let n = dpdn.input_count();
    let expected = TruthTable::from_expr(dpdn.function(), n);
    let true_conduction = dpdn.true_conduction()?;
    let false_conduction = dpdn.false_conduction()?;
    let exactly_one =
        (0..(1usize << n)).all(|row| true_conduction.value(row) != false_conduction.value(row));
    Ok(FunctionalReport {
        true_branch_matches: true_conduction == expected,
        false_branch_matches: false_conduction == expected.complement(),
        exactly_one_branch_conducts: exactly_one,
        true_conduction,
        false_conduction,
    })
}

/// Computes the evaluation-depth report of a network.
///
/// # Errors
///
/// Returns [`crate::DpdnError::TooManyInputs`] for very wide gates.
pub fn depth_report(dpdn: &Dpdn) -> Result<DepthReport> {
    dpdn.check_enumerable()?;
    let n = dpdn.input_count();
    let mut events = Vec::with_capacity(1 << n);
    for assignment in 0..(1u64 << n) {
        // Breadth-first search over the conducting switches gives the
        // shortest discharge path (in transistors) for this event.
        let x_depth = conducting_distance(dpdn, dpdn.x(), assignment);
        let y_depth = conducting_distance(dpdn, dpdn.y(), assignment);
        let (branch, depth) = match (x_depth, y_depth) {
            (Some(d), None) => (ConductingBranch::TrueBranch, d),
            (None, Some(d)) => (ConductingBranch::FalseBranch, d),
            (Some(dx), Some(dy)) => {
                // Non-differential conduction; report the shorter path so the
                // functional report (which flags this) stays the authority.
                if dx <= dy {
                    (ConductingBranch::TrueBranch, dx)
                } else {
                    (ConductingBranch::FalseBranch, dy)
                }
            }
            (None, None) => continue,
        };
        events.push(DepthEvent {
            assignment,
            branch,
            depth,
        });
    }
    Ok(DepthReport { events })
}

/// Shortest number of conducting switches between `from` and the common node
/// Z under `assignment`, or `None` when they are not connected.
fn conducting_distance(dpdn: &Dpdn, from: NodeId, assignment: u64) -> Option<usize> {
    let net = dpdn.network();
    let target = dpdn.z();
    let mut dist: Vec<Option<usize>> = vec![None; net.node_count()];
    dist[from.index()] = Some(0);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(node) = queue.pop_front() {
        let d = dist[node.index()].expect("queued nodes have a distance");
        if node == target {
            return Some(d);
        }
        for id in net.switches_at(node) {
            let sw = net.switch(id).expect("switches_at returns valid ids");
            if !sw.conducts(assignment) {
                continue;
            }
            let Some(next) = sw.other(node) else { continue };
            if dist[next.index()].is_none() {
                dist[next.index()] = Some(d + 1);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Computes the early-propagation report of a network.
///
/// Inputs that have not yet "arrived" have both rails at 0 (the precharge
/// value), so neither their true-literal nor their false-literal devices
/// conduct, and inserted pass gates for those inputs are open.
///
/// # Errors
///
/// Returns [`crate::DpdnError::TooManyInputs`] for very wide gates.
pub fn early_propagation_report(dpdn: &Dpdn) -> Result<EarlyPropagationReport> {
    dpdn.check_enumerable()?;
    let n = dpdn.input_count();
    if n > MAX_EARLY_PROPAGATION_INPUTS {
        return Ok(EarlyPropagationReport {
            analysed: false,
            events: Vec::new(),
        });
    }
    let net = dpdn.network();
    let node_count = net.node_count();
    let mut events = Vec::new();
    let full_mask = (1u64 << n) - 1;
    for arrived_mask in 0..(1u64 << n) {
        if arrived_mask == full_mask {
            continue; // all inputs arrived: normal evaluation, not "early".
        }
        // Iterate over the values of the arrived inputs only.
        let mut value_bits: Vec<u64> = Vec::new();
        for bit in 0..n as u64 {
            if (arrived_mask >> bit) & 1 == 1 {
                value_bits.push(bit);
            }
        }
        for combo in 0..(1u64 << value_bits.len()) {
            let mut values = 0u64;
            for (i, bit) in value_bits.iter().enumerate() {
                if (combo >> i) & 1 == 1 {
                    values |= 1 << bit;
                }
            }
            let mut uf = UnionFind::new(node_count);
            for (_, sw) in net.switches() {
                let var_bit = sw.gate.var().index() as u64;
                let arrived = (arrived_mask >> var_bit) & 1 == 1;
                if arrived && sw.gate.eval_bits(values) {
                    uf.union(sw.a.index(), sw.b.index());
                }
            }
            let x_conducts = uf.connected(dpdn.x().index(), dpdn.z().index());
            let y_conducts = uf.connected(dpdn.y().index(), dpdn.z().index());
            if x_conducts {
                events.push(EarlyPropagationEvent {
                    arrived_mask,
                    values,
                    branch: ConductingBranch::TrueBranch,
                });
            }
            if y_conducts {
                events.push(EarlyPropagationEvent {
                    arrived_mask,
                    values,
                    branch: ConductingBranch::FalseBranch,
                });
            }
        }
    }
    Ok(EarlyPropagationReport {
        analysed: true,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpl_logic::parse_expr;

    #[test]
    fn genuine_and_nand_is_not_fully_connected() {
        let (f, ns) = parse_expr("A.B").unwrap();
        let gate = Dpdn::genuine(&f, &ns).unwrap();
        let report = verify(&gate).unwrap();
        assert!(!report.is_fully_connected());
        assert!(report.is_functionally_correct());
        // The memory effect of Fig. 2 (left): with A=0, B=0 node W floats.
        assert!(report.connectivity.has_floating_nodes());
        let floating_event = report
            .connectivity
            .events()
            .iter()
            .find(|e| !e.floating.is_empty())
            .unwrap();
        assert_eq!(floating_event.assignment, 0b00);
        assert!(!report.connectivity.discharge_set_is_constant());
        assert!(report.connectivity.worst_event().is_some());
    }

    #[test]
    fn fully_connected_and_nand_passes_all_structural_checks() {
        let (f, ns) = parse_expr("A.B").unwrap();
        let gate = Dpdn::fully_connected(&f, &ns).unwrap();
        let report = verify(&gate).unwrap();
        assert!(report.is_fully_connected());
        assert!(report.is_functionally_correct());
        assert!(!report.connectivity.has_floating_nodes());
        assert!(report.connectivity.discharge_set_is_constant());
        // The plain fully connected network still has data-dependent depth
        // (1 for the !B shortcut, 2 through the series stack) …
        assert!(!report.has_constant_depth());
        assert_eq!(report.depth.min_depth(), 1);
        assert_eq!(report.depth.max_depth(), 2);
        // … and still evaluates early when only B has arrived.
        assert!(!report.is_free_of_early_propagation());
        let summary = report.summary();
        assert!(summary.contains("fully connected: true"));
    }

    #[test]
    fn fully_connected_oai22_is_fully_connected() {
        let (f, ns) = parse_expr("(A+B).(C+D)").unwrap();
        let genuine = Dpdn::genuine(&f, &ns).unwrap();
        let fc = Dpdn::fully_connected(&f, &ns).unwrap();
        assert!(!verify(&genuine).unwrap().is_fully_connected());
        let report = verify(&fc).unwrap();
        assert!(report.is_fully_connected());
        assert!(report.is_functionally_correct());
    }

    #[test]
    fn depth_report_identifies_branches() {
        let (f, ns) = parse_expr("A.B").unwrap();
        let gate = Dpdn::fully_connected(&f, &ns).unwrap();
        let depth = depth_report(&gate).unwrap();
        assert_eq!(depth.events().len(), 4);
        for event in depth.events() {
            let expected_branch = if f.eval_bits(event.assignment) {
                ConductingBranch::TrueBranch
            } else {
                ConductingBranch::FalseBranch
            };
            assert_eq!(event.branch, expected_branch);
        }
    }

    #[test]
    fn functional_report_detects_broken_networks() {
        use dpl_logic::Namespace;
        use dpl_netlist::{NodeRole, SwitchNetwork};
        // A "differential" network whose false branch is wrong (also A.B).
        let ns = Namespace::with_names(["A", "B"]);
        let a = ns.get("A").unwrap();
        let b = ns.get("B").unwrap();
        let mut net = SwitchNetwork::new();
        let x = net.add_node("X", NodeRole::Terminal);
        let y = net.add_node("Y", NodeRole::Terminal);
        let z = net.add_node("Z", NodeRole::Terminal);
        let w1 = net.add_node("W1", NodeRole::Internal);
        let w2 = net.add_node("W2", NodeRole::Internal);
        net.add_switch(a.positive(), x, w1);
        net.add_switch(b.positive(), w1, z);
        net.add_switch(a.positive(), y, w2);
        net.add_switch(b.positive(), w2, z);
        let (f, _) = parse_expr("A.B").unwrap();
        let gate = crate::Dpdn::from_parts(net, x, y, z, f, ns, crate::DpdnStyle::Genuine).unwrap();
        let report = functional_report(&gate).unwrap();
        assert!(report.true_branch_matches);
        assert!(!report.false_branch_matches);
        assert!(!report.exactly_one_branch_conducts);
        assert!(!report.is_correct());
    }

    #[test]
    fn early_propagation_of_series_only_network() {
        // A 2-input AND genuine network: the parallel !A/!B branch conducts
        // as soon as either complemented input arrives at 1.
        let (f, ns) = parse_expr("A.B").unwrap();
        let gate = Dpdn::genuine(&f, &ns).unwrap();
        let report = early_propagation_report(&gate).unwrap();
        assert!(report.analysed);
        assert!(report.has_early_propagation());
        // Premature conduction always happens through the false branch here.
        assert!(report
            .events
            .iter()
            .all(|e| e.branch == ConductingBranch::FalseBranch));
    }
}

//! Enhanced fully connected DPDNs — the pass-gate insertion of Section 5.
//!
//! The plain fully connected network still has discharge paths of different
//! lengths (for the AND-NAND gate: one transistor through the `!B` shortcut,
//! two through the series stack), which makes the discharge *resistance* and
//! therefore the gate delay data dependent, and allows the gate to evaluate
//! before all of its inputs have arrived (early propagation).  The paper
//! inserts a *pass gate* — a parallel pair of transistors driven by an input
//! and its complement, which is always conducting once that input has become
//! complementary — "for all the input signals that do not control a
//! transistor in that particular discharge path".
//!
//! The implementation threads a list of "missing" variables through the same
//! recursion as the plain construction: whenever a branch terminates at a
//! literal, a chain of pass gates for the variables that the shortcut skips
//! is inserted between the branch's top node and the device.

use dpl_logic::{decompose, CanonicalPath, Decomposition, Expr, Namespace, Var};
use dpl_netlist::{NodeId, NodeRole, SwitchNetwork};

use crate::dpdn::{Dpdn, DpdnStyle};
use crate::synth::fresh_internal;
use crate::Result;

impl Dpdn {
    /// Synthesises the *enhanced* fully connected DPDN of `function`
    /// (paper §5): a fully connected network in which every discharge path
    /// contains one device per variable of the decomposition, so the
    /// evaluation depth is constant and early propagation is eliminated.
    ///
    /// The trade-off, as the paper notes, "is an increase in area and total
    /// load capacitance": the inserted pass gates are reported by
    /// [`Dpdn::dummy_device_count`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::DpdnError::ConstantFunction`] for constant
    /// expressions.
    ///
    /// ```
    /// use dpl_core::Dpdn;
    /// use dpl_logic::parse_expr;
    /// # fn main() -> Result<(), dpl_core::DpdnError> {
    /// let (f, ns) = parse_expr("A.B")?;
    /// let gate = Dpdn::fully_connected_enhanced(&f, &ns)?;
    /// let report = gate.verify()?;
    /// assert!(report.is_fully_connected());
    /// assert!(report.has_constant_depth());
    /// assert!(report.is_free_of_early_propagation());
    /// // Fig. 6 (right): one pass gate (two dummy devices) is added.
    /// assert_eq!(gate.dummy_device_count(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn fully_connected_enhanced(function: &Expr, namespace: &Namespace) -> Result<Self> {
        let nnf = function.to_nnf().simplify();
        let mut network = SwitchNetwork::new();
        let x = network.add_node("X", NodeRole::Terminal);
        let y = network.add_node("Y", NodeRole::Terminal);
        let z = network.add_node("Z", NodeRole::Terminal);
        let mut counter = 0usize;
        build_enhanced(&nnf, &mut network, x, y, z, &[], &[], &mut counter)?;
        Dpdn::from_parts(
            network,
            x,
            y,
            z,
            function.clone(),
            namespace.clone(),
            DpdnStyle::Enhanced,
        )
    }
}

/// Recursive enhanced construction.
///
/// Contract: every conduction path from `t` to `b` contains exactly
/// `depth(expr) + miss_true.len()` devices and every path from `f_node` to
/// `b` contains `depth(expr) + miss_false.len()` devices, where `depth` is
/// [`dpl_logic::decomposition_depth`].
#[allow(clippy::too_many_arguments)]
fn build_enhanced(
    expr: &Expr,
    network: &mut SwitchNetwork,
    t: NodeId,
    f_node: NodeId,
    b: NodeId,
    miss_true: &[Var],
    miss_false: &[Var],
    counter: &mut usize,
) -> Result<()> {
    match decompose(expr)? {
        Decomposition::Literal(lit) => {
            let true_top = insert_pass_gate_chain(network, t, miss_true, counter);
            network.add_switch(lit, true_top, b);
            let false_top = insert_pass_gate_chain(network, f_node, miss_false, counter);
            network.add_switch(lit.complement(), false_top, b);
            Ok(())
        }
        Decomposition::And(x, y) => {
            let w = fresh_internal(network, counter);
            // The !y shortcut from the false node skips everything in x.
            let canonical_x = CanonicalPath::of(&x)?;
            build_enhanced(&x, network, t, f_node, w, miss_true, miss_false, counter)?;
            let mut y_false_miss = miss_false.to_vec();
            y_false_miss.extend_from_slice(canonical_x.vars());
            build_enhanced(&y, network, w, f_node, b, &[], &y_false_miss, counter)
        }
        Decomposition::Or(x, y) => {
            let w = fresh_internal(network, counter);
            // The y shortcut from the true node skips everything in x.
            let canonical_x = CanonicalPath::of(&x)?;
            build_enhanced(&x, network, t, f_node, w, miss_true, miss_false, counter)?;
            let mut y_true_miss = miss_true.to_vec();
            y_true_miss.extend_from_slice(canonical_x.vars());
            build_enhanced(&y, network, t, w, b, &y_true_miss, &[], counter)
        }
    }
}

/// Inserts a chain of pass gates for `vars` starting at `from`, returning the
/// node at the end of the chain (equal to `from` when `vars` is empty).
fn insert_pass_gate_chain(
    network: &mut SwitchNetwork,
    from: NodeId,
    vars: &[Var],
    counter: &mut usize,
) -> NodeId {
    let mut current = from;
    for &var in vars {
        let next = {
            let name = format!("P{}", *counter + 1);
            *counter += 1;
            network.add_node(name, NodeRole::Internal)
        };
        network.add_dummy_switch(var.positive(), current, next);
        network.add_dummy_switch(var.negative(), current, next);
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;
    use dpl_logic::{decomposition_depth, parse_expr, TruthTable};

    fn check(text: &str) -> (Dpdn, crate::verify::VerificationReport) {
        let (f, ns) = parse_expr(text).unwrap();
        let gate = Dpdn::fully_connected_enhanced(&f, &ns).unwrap();
        let report = verify(&gate).unwrap();
        (gate, report)
    }

    #[test]
    fn enhanced_and_nand_matches_fig6() {
        let (gate, report) = check("A.B");
        // 4 functional devices + 1 pass gate (2 dummies).
        assert_eq!(gate.functional_device_count(), 4);
        assert_eq!(gate.dummy_device_count(), 2);
        assert!(report.is_fully_connected());
        assert!(report.is_functionally_correct());
        assert!(report.has_constant_depth());
        assert_eq!(report.depth.max_depth(), 2);
        assert!(report.is_free_of_early_propagation());
    }

    #[test]
    fn enhanced_or_nor_is_symmetric() {
        let (gate, report) = check("A+B");
        assert_eq!(gate.dummy_device_count(), 2);
        assert!(report.has_constant_depth());
        assert!(report.is_free_of_early_propagation());
    }

    #[test]
    fn enhanced_oai22_has_constant_depth_four() {
        let (gate, report) = check("(A+B).(C+D)");
        assert!(report.is_fully_connected());
        assert!(report.is_functionally_correct());
        assert!(report.has_constant_depth());
        assert_eq!(report.depth.max_depth(), 4);
        assert!(report.is_free_of_early_propagation());
        assert!(gate.dummy_device_count() > 0);
    }

    #[test]
    fn enhanced_depth_equals_decomposition_depth() {
        for text in ["A.B", "A+B", "A.B.C", "(A+B).(C+D)", "A.(B+C)", "A^B"] {
            let (f, _) = parse_expr(text).unwrap();
            let (_, report) = check(text);
            assert_eq!(
                report.depth.max_depth(),
                decomposition_depth(&f).unwrap(),
                "depth mismatch for {text}"
            );
            assert!(report.has_constant_depth(), "non-constant depth for {text}");
        }
    }

    #[test]
    fn enhanced_networks_stay_functionally_correct() {
        for text in [
            "A.B",
            "A+B",
            "A.B.C",
            "A+B+C",
            "A^B",
            "(A+B).(C+D)",
            "A.B+C.D",
            "A.(B+C.D)",
            "S.A + !S.B",
        ] {
            let (f, ns) = parse_expr(text).unwrap();
            let gate = Dpdn::fully_connected_enhanced(&f, &ns).unwrap();
            let expected = TruthTable::from_expr(&f, ns.len());
            assert_eq!(
                gate.true_conduction().unwrap(),
                expected,
                "true branch broken for {text}"
            );
            assert_eq!(
                gate.false_conduction().unwrap(),
                expected.complement(),
                "false branch broken for {text}"
            );
        }
    }

    #[test]
    fn enhancement_never_reduces_device_count() {
        for text in ["A.B", "(A+B).(C+D)", "A.B+C.D", "A.B.C"] {
            let (f, ns) = parse_expr(text).unwrap();
            let plain = Dpdn::fully_connected(&f, &ns).unwrap();
            let enhanced = Dpdn::fully_connected_enhanced(&f, &ns).unwrap();
            assert_eq!(
                plain.device_count(),
                enhanced.functional_device_count(),
                "functional devices changed for {text}"
            );
            assert!(enhanced.device_count() >= plain.device_count());
        }
    }

    #[test]
    fn single_literal_needs_no_pass_gates() {
        let (gate, report) = check("A");
        assert_eq!(gate.dummy_device_count(), 0);
        assert!(report.has_constant_depth());
        assert_eq!(report.depth.max_depth(), 1);
    }
}

//! Construction of *genuine* differential pull-down networks.
//!
//! A genuine DPDN is the conventional implementation used in CVSL-style
//! logic: the true branch is the series-parallel network of the expression,
//! the false branch is its dual (paper Fig. 2, left).  Genuine networks
//! minimise device count and stack depth, but their internal nodes can be
//! left floating for some input combinations — the *memory effect* that
//! makes the gate's power consumption data dependent.

use dpl_logic::{Expr, Namespace};
use dpl_netlist::{NodeRole, SpTree, SwitchNetwork};

use crate::dpdn::{Dpdn, DpdnStyle};
use crate::Result;

impl Dpdn {
    /// Builds the genuine (conventional, CVSL-style) DPDN of `function`.
    ///
    /// The X–Z branch is the series-parallel network of the expression; the
    /// Y–Z branch is its dual with complemented literals.  The two branches
    /// share no devices and no internal nodes.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DpdnError::ConstantFunction`] for constant
    /// expressions.
    ///
    /// ```
    /// use dpl_core::Dpdn;
    /// use dpl_logic::parse_expr;
    /// # fn main() -> Result<(), dpl_core::DpdnError> {
    /// let (f, ns) = parse_expr("A.B")?;
    /// let genuine = Dpdn::genuine(&f, &ns)?;
    /// // Fig. 2 (left): A and B in series, !A and !B in parallel.
    /// assert_eq!(genuine.device_count(), 4);
    /// assert_eq!(genuine.internal_nodes().len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn genuine(function: &Expr, namespace: &Namespace) -> Result<Self> {
        let tree = SpTree::from_expr(function)?;
        let dual = tree.dual();

        let mut network = SwitchNetwork::new();
        let x = network.add_node("X", NodeRole::Terminal);
        let y = network.add_node("Y", NodeRole::Terminal);
        let z = network.add_node("Z", NodeRole::Terminal);
        tree.instantiate(&mut network, x, z, "WT");
        dual.instantiate(&mut network, y, z, "WF");

        Dpdn::from_parts(
            network,
            x,
            y,
            z,
            function.clone(),
            namespace.clone(),
            DpdnStyle::Genuine,
        )
    }

    /// Builds a genuine DPDN directly from a pair of series-parallel trees.
    ///
    /// This is the entry point for the §4.2 workflow where the designer
    /// already has a schematic: the trees describe the existing true and
    /// false branches.  The function implemented by the true branch is
    /// recovered from the tree.
    ///
    /// # Errors
    ///
    /// Returns an error if either tree is empty.
    pub fn genuine_from_trees(
        true_branch: &SpTree,
        false_branch: &SpTree,
        namespace: &Namespace,
    ) -> Result<Self> {
        let mut network = SwitchNetwork::new();
        let x = network.add_node("X", NodeRole::Terminal);
        let y = network.add_node("Y", NodeRole::Terminal);
        let z = network.add_node("Z", NodeRole::Terminal);
        true_branch.instantiate(&mut network, x, z, "WT");
        false_branch.instantiate(&mut network, y, z, "WF");
        Dpdn::from_parts(
            network,
            x,
            y,
            z,
            true_branch.to_expr(),
            namespace.clone(),
            DpdnStyle::Genuine,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpl_logic::{parse_expr, TruthTable};

    #[test]
    fn genuine_and_nand_matches_fig2_left() {
        let (f, ns) = parse_expr("A.B").unwrap();
        let gate = Dpdn::genuine(&f, &ns).unwrap();
        // 2 series devices + 2 parallel devices, one internal node W.
        assert_eq!(gate.device_count(), 4);
        assert_eq!(gate.internal_nodes().len(), 1);
        let tt = gate.true_conduction().unwrap();
        assert_eq!(tt, TruthTable::from_expr(&f, 2));
        let ff = gate.false_conduction().unwrap();
        assert_eq!(ff, TruthTable::from_expr(&f, 2).complement());
    }

    #[test]
    fn genuine_oai22_has_eight_devices() {
        let (f, ns) = parse_expr("(A+B).(C+D)").unwrap();
        let gate = Dpdn::genuine(&f, &ns).unwrap();
        assert_eq!(gate.device_count(), 8);
        let tt = gate.true_conduction().unwrap();
        assert_eq!(tt, TruthTable::from_expr(&f, 4));
    }

    #[test]
    fn genuine_branches_are_complementary() {
        for text in ["A.B", "A+B", "A^B", "(A+B).(C+D)", "A.(B+C)", "A.B+C.D"] {
            let (f, ns) = parse_expr(text).unwrap();
            let gate = Dpdn::genuine(&f, &ns).unwrap();
            let t = gate.true_conduction().unwrap();
            let fa = gate.false_conduction().unwrap();
            assert_eq!(t.complement(), fa, "branches not complementary for {text}");
        }
    }

    #[test]
    fn genuine_from_trees_roundtrips() {
        let (f, ns) = parse_expr("A.(B+C)").unwrap();
        let tree = SpTree::from_expr(&f).unwrap();
        let gate = Dpdn::genuine_from_trees(&tree, &tree.dual(), &ns).unwrap();
        assert_eq!(gate.device_count(), 6);
        let tt = gate.true_conduction().unwrap();
        assert_eq!(tt, TruthTable::from_expr(&f, 3));
    }

    #[test]
    fn constant_functions_are_rejected() {
        let (f, ns) = parse_expr("1").unwrap();
        assert!(Dpdn::genuine(&f, &ns).is_err());
    }
}

use std::fmt;

use dpl_logic::LogicError;
use dpl_netlist::NetlistError;

/// Errors produced by the DPDN synthesis and verification procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DpdnError {
    /// A logic-level error (parsing, arity, constants, …).
    Logic(LogicError),
    /// A netlist-level error (SP recognition, malformed networks, …).
    Netlist(NetlistError),
    /// The function to synthesise is constant; constants have no pull-down
    /// network in dynamic differential logic.
    ConstantFunction,
    /// The two branches of a supposed differential network do not implement
    /// complementary functions.
    BranchesNotComplementary,
    /// The network uses more input variables than the verifier can enumerate
    /// exhaustively.
    TooManyInputs {
        /// Number of inputs of the offending network.
        inputs: usize,
        /// Maximum number of inputs the operation supports.
        maximum: usize,
    },
    /// A named gate was not found in the gate library.
    UnknownGate {
        /// The requested gate name.
        name: String,
    },
}

impl fmt::Display for DpdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpdnError::Logic(e) => write!(f, "logic error: {e}"),
            DpdnError::Netlist(e) => write!(f, "netlist error: {e}"),
            DpdnError::ConstantFunction => {
                write!(
                    f,
                    "constant functions have no differential pull-down network"
                )
            }
            DpdnError::BranchesNotComplementary => {
                write!(f, "the true and false branches are not complementary")
            }
            DpdnError::TooManyInputs { inputs, maximum } => {
                write!(
                    f,
                    "network has {inputs} inputs which exceeds the exhaustive-verification limit of {maximum}"
                )
            }
            DpdnError::UnknownGate { name } => write!(f, "unknown gate `{name}`"),
        }
    }
}

impl std::error::Error for DpdnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DpdnError::Logic(e) => Some(e),
            DpdnError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LogicError> for DpdnError {
    fn from(e: LogicError) -> Self {
        match e {
            LogicError::ConstantExpression => DpdnError::ConstantFunction,
            other => DpdnError::Logic(other),
        }
    }
}

impl From<NetlistError> for DpdnError {
    fn from(e: NetlistError) -> Self {
        match e {
            NetlistError::ConstantExpression => DpdnError::ConstantFunction,
            other => DpdnError::Netlist(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_map_constants() {
        let e: DpdnError = LogicError::ConstantExpression.into();
        assert_eq!(e, DpdnError::ConstantFunction);
        let e: DpdnError = NetlistError::ConstantExpression.into();
        assert_eq!(e, DpdnError::ConstantFunction);
        let e: DpdnError = LogicError::UnexpectedEnd.into();
        assert!(matches!(e, DpdnError::Logic(_)));
    }

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = DpdnError::Logic(LogicError::UnexpectedEnd);
        assert!(e.to_string().contains("logic error"));
        assert!(e.source().is_some());
        let e = DpdnError::UnknownGate { name: "FOO".into() };
        assert!(e.to_string().contains("FOO"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DpdnError>();
    }
}

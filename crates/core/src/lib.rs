//! # dpl-core
//!
//! Synthesis, transformation and verification of **fully connected
//! differential pull-down networks** — a Rust implementation of the design
//! method of Tiri & Verbauwhede, *"Design Method for Constant Power
//! Consumption of Differential Logic Circuits"*, DATE 2005.
//!
//! Differential power analysis (DPA) exploits the data dependence of a
//! gate's power consumption.  Constant-power logic styles such as SABL
//! counter it with dynamic differential gates whose load capacitance must be
//! input independent; that requires the *differential pull-down network*
//! (DPDN) inside the gate to be **fully connected**: for every complementary
//! input combination, every internal node must be connected to one of the
//! output nodes so that its parasitic capacitance is discharged and
//! recharged every single cycle.
//!
//! This crate implements:
//!
//! * [`Dpdn::genuine`] — the conventional (CVSL-style) network, which
//!   exhibits the memory effect the paper sets out to remove,
//! * [`Dpdn::fully_connected`] — the §4.1 construction from a Boolean
//!   expression,
//! * [`Dpdn::to_fully_connected`] — the §4.2 transformation of an existing
//!   schematic (device count preserved),
//! * [`Dpdn::fully_connected_enhanced`] — the §5 enhancement with inserted
//!   pass gates (constant evaluation depth, no early propagation),
//! * [`verify()`] — exhaustive structural verification of all of the above
//!   (full connectivity, floating nodes, functional correctness, evaluation
//!   depth, early propagation),
//! * [`GateLibrary`] — a standard-cell style library of secure gates built
//!   with the method.
//!
//! ```
//! use dpl_core::{Dpdn, GateKind};
//! use dpl_logic::parse_expr;
//!
//! # fn main() -> Result<(), dpl_core::DpdnError> {
//! // Fig. 2 of the paper: the AND-NAND gate.
//! let (f, ns) = parse_expr("A.B")?;
//!
//! let genuine = Dpdn::genuine(&f, &ns)?;
//! assert!(!genuine.verify()?.is_fully_connected());     // memory effect
//!
//! let secure = Dpdn::fully_connected(&f, &ns)?;
//! assert!(secure.verify()?.is_fully_connected());        // constant load
//! assert_eq!(secure.device_count(), genuine.device_count());
//!
//! // The whole standard library can be generated the same way.
//! let oai22 = GateKind::Oai22.expression();
//! let cell = Dpdn::fully_connected(&oai22.0, &oai22.1)?;
//! assert_eq!(cell.device_count(), 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dpdn;
mod enhance;
mod error;
mod genuine;
mod library;
pub mod random;
mod synth;
mod transform;
pub mod verify;

pub use dpdn::{Dpdn, DpdnStyle, MAX_EXHAUSTIVE_INPUTS};
pub use error::DpdnError;
pub use library::{GateKind, GateLibrary, LibraryCell, MAX_GATE_INPUTS};
pub use verify::{
    verify, ConductingBranch, ConnectivityReport, DepthReport, EarlyPropagationReport,
    FunctionalReport, VerificationReport,
};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DpdnError>;

//! Synthesis of fully connected differential pull-down networks from a
//! Boolean expression — the design method of Section 4.1 of the paper.
//!
//! The paper's five-step procedure is implemented as a recursion on the
//! expression structure.  For a decomposition `f = x·y` (case A) the dual is
//! `!f = !x + !y`; the parallel `!x + !y` connection is rewritten as
//! `!x·y + !y`, network `y` is placed at the bottom of the `x·y` series
//! connection, and network `y` is *shared* between the two branches.
//! Structurally this means:
//!
//! ```text
//!   X ──[ x ]── W ──[ y ]── Z
//!   Y ──[ !x ]── W            (shares the y network below W)
//!   Y ──[ !y ]── Z
//! ```
//!
//! which is exactly a recursive instance of the same problem: `x` becomes a
//! DPDN between `(X, Y, W)` and `y` becomes a DPDN between `(W, Y, Z)`.
//! Case B (`f = x + y`, `!f = !x·!y`) is the mirror image with the series
//! stack on the false side.  The recursion bottoms out at single literals,
//! which become one transistor per rail ("Step 4").

use dpl_logic::{decompose, Decomposition, Expr, Namespace};
use dpl_netlist::{NodeId, NodeRole, SwitchNetwork};

use crate::dpdn::{Dpdn, DpdnStyle};
use crate::Result;

impl Dpdn {
    /// Synthesises a fully connected DPDN for `function` using the
    /// Boolean-expression procedure of §4.1.
    ///
    /// The resulting network has one pair of transistors per literal of the
    /// (NNF) expression — the same device count as the genuine network built
    /// from the same expression — but every internal node is connected to an
    /// output node for every complementary input combination.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DpdnError::ConstantFunction`] for constant
    /// expressions.
    ///
    /// ```
    /// use dpl_core::Dpdn;
    /// use dpl_logic::parse_expr;
    /// # fn main() -> Result<(), dpl_core::DpdnError> {
    /// // The paper's running example: the AND-NAND gate of Fig. 2 (right).
    /// let (f, ns) = parse_expr("A.B")?;
    /// let gate = Dpdn::fully_connected(&f, &ns)?;
    /// let report = gate.verify()?;
    /// assert!(report.is_fully_connected());
    /// assert!(report.is_functionally_correct());
    /// # Ok(())
    /// # }
    /// ```
    pub fn fully_connected(function: &Expr, namespace: &Namespace) -> Result<Self> {
        let nnf = function.to_nnf().simplify();
        let mut network = SwitchNetwork::new();
        let x = network.add_node("X", NodeRole::Terminal);
        let y = network.add_node("Y", NodeRole::Terminal);
        let z = network.add_node("Z", NodeRole::Terminal);
        let mut counter = 0usize;
        build_fully_connected(&nnf, &mut network, x, y, z, &mut counter)?;
        Dpdn::from_parts(
            network,
            x,
            y,
            z,
            function.clone(),
            namespace.clone(),
            DpdnStyle::FullyConnected,
        )
    }
}

/// Recursive §4.1 construction.
///
/// Builds, inside `network`, a differential network implementing `expr`
/// between the "true top" node `t`, the "false top" node `f_node` and the
/// bottom node `b`: every conduction path from `t` to `b` corresponds to
/// `expr` being `1`, every conduction path from `f_node` to `b` corresponds
/// to `expr` being `0`, and every internal node created below this level is
/// connected to `t` or `f_node` for every complementary input.
pub(crate) fn build_fully_connected(
    expr: &Expr,
    network: &mut SwitchNetwork,
    t: NodeId,
    f_node: NodeId,
    b: NodeId,
    counter: &mut usize,
) -> Result<()> {
    match decompose(expr)? {
        Decomposition::Literal(lit) => {
            network.add_switch(lit, t, b);
            network.add_switch(lit.complement(), f_node, b);
            Ok(())
        }
        Decomposition::And(x, y) => {
            // Case A: f = x.y, !f = !x + !y  -->  !x.y + !y with y shared.
            let w = fresh_internal(network, counter);
            build_fully_connected(&x, network, t, f_node, w, counter)?;
            build_fully_connected(&y, network, w, f_node, b, counter)
        }
        Decomposition::Or(x, y) => {
            // Case B: f = x + y, !f = !x.!y  -->  x.!y + y with !y shared.
            let w = fresh_internal(network, counter);
            build_fully_connected(&x, network, t, f_node, w, counter)?;
            build_fully_connected(&y, network, t, w, b, counter)
        }
    }
}

pub(crate) fn fresh_internal(network: &mut SwitchNetwork, counter: &mut usize) -> NodeId {
    let name = format!("W{}", *counter + 1);
    *counter += 1;
    network.add_node(name, NodeRole::Internal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpl_logic::{parse_expr, TruthTable};

    fn check_function(text: &str) {
        let (f, ns) = parse_expr(text).unwrap();
        let gate = Dpdn::fully_connected(&f, &ns).unwrap();
        let expected = TruthTable::from_expr(&f, ns.len());
        assert_eq!(
            gate.true_conduction().unwrap(),
            expected,
            "true branch wrong for {text}"
        );
        assert_eq!(
            gate.false_conduction().unwrap(),
            expected.complement(),
            "false branch wrong for {text}"
        );
    }

    #[test]
    fn and_nand_matches_fig2_right() {
        let (f, ns) = parse_expr("A.B").unwrap();
        let gate = Dpdn::fully_connected(&f, &ns).unwrap();
        // Same device count as the genuine network (4), one internal node.
        assert_eq!(gate.device_count(), 4);
        assert_eq!(gate.internal_nodes().len(), 1);
        check_function("A.B");
    }

    #[test]
    fn or_nor_is_the_mirror_image() {
        let (f, ns) = parse_expr("A+B").unwrap();
        let gate = Dpdn::fully_connected(&f, &ns).unwrap();
        assert_eq!(gate.device_count(), 4);
        assert_eq!(gate.internal_nodes().len(), 1);
        check_function("A+B");
    }

    #[test]
    fn oai22_matches_fig5() {
        let (f, ns) = parse_expr("(A+B).(C+D)").unwrap();
        let gate = Dpdn::fully_connected(&f, &ns).unwrap();
        // Fig. 5: the fully connected OAI22 network keeps the 8 devices of
        // the genuine network and has 3 internal nodes.
        assert_eq!(gate.device_count(), 8);
        assert_eq!(gate.internal_nodes().len(), 3);
        check_function("(A+B).(C+D)");
    }

    #[test]
    fn functional_correctness_across_gate_shapes() {
        for text in [
            "A.B",
            "A+B",
            "A.B.C",
            "A+B+C",
            "A.B.C.D",
            "A^B",
            "A^B^C",
            "A.B + !A.!B",
            "(A+B).(C+D)",
            "A.B + C.D",
            "A.(B+C.D)",
            "A.B + A.C + B.C",
            "(A+B).(A+C)",
            "S.A + !S.B",
            "A.B.C + !A.!B.!C",
        ] {
            check_function(text);
        }
    }

    #[test]
    fn device_count_matches_literal_count() {
        for text in ["A.B", "(A+B).(C+D)", "A.B+C.D", "A.(B+C)", "A^B"] {
            let (f, ns) = parse_expr(text).unwrap();
            let gate = Dpdn::fully_connected(&f, &ns).unwrap();
            let nnf = f.to_nnf().simplify();
            assert_eq!(
                gate.device_count(),
                2 * nnf.literal_count(),
                "device count mismatch for {text}"
            );
        }
    }

    #[test]
    fn every_internal_node_sees_both_rails_of_some_input() {
        // Structural property from §4.3: "in the resulting differential pull
        // down network, both the true and the false of an input signal
        // control a device for every internal node".
        let (f, ns) = parse_expr("(A+B).(C+D)").unwrap();
        let gate = Dpdn::fully_connected(&f, &ns).unwrap();
        for node in gate.internal_nodes() {
            let incident: Vec<_> = gate
                .network()
                .switches_at(node)
                .into_iter()
                .map(|id| gate.network().switch(id).unwrap().gate)
                .collect();
            let has_pair = incident.iter().any(|l| incident.contains(&l.complement()));
            assert!(
                has_pair,
                "internal node {node:?} is not controlled by a complementary pair"
            );
        }
    }

    #[test]
    fn constant_functions_are_rejected() {
        let (f, ns) = parse_expr("A.!A").unwrap();
        // A.!A is not simplified to a constant by `simplify` (it is purely
        // structural), so it builds; a literal constant must fail.
        assert!(Dpdn::fully_connected(&f, &ns).is_ok());
        let (c, ns) = parse_expr("0").unwrap();
        assert!(Dpdn::fully_connected(&c, &ns).is_err());
    }
}

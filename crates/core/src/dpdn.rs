use std::fmt;

use dpl_logic::{Expr, Namespace, TruthTable};
use dpl_netlist::{spice, NodeId, SwitchNetwork};

use crate::error::DpdnError;
use crate::Result;

/// Maximum number of gate inputs for which exhaustive verification over all
/// complementary input combinations is performed.
pub const MAX_EXHAUSTIVE_INPUTS: usize = 16;

/// A differential pull-down network (DPDN).
///
/// A DPDN is a network of NMOS switches with three external nodes: the module
/// output nodes `X` and `Y` and the common node `Z` (see Fig. 1 and Fig. 2 of
/// the paper).  During the evaluation phase of a SABL gate the network
/// connects exactly one of `X`/`Y` to `Z`; the branch from `X` to `Z`
/// implements the gate function `f`, the branch from `Y` to `Z` implements
/// its complement.
///
/// The paper's contribution is a construction that makes the DPDN *fully
/// connected*: for every complementary input combination every internal node
/// is connected to `X` or `Y`, so its parasitic capacitance is discharged in
/// every cycle and the power consumption is input independent.
///
/// ```
/// use dpl_core::Dpdn;
/// use dpl_logic::parse_expr;
///
/// # fn main() -> Result<(), dpl_core::DpdnError> {
/// let (f, ns) = parse_expr("A.B")?;
/// let gate = Dpdn::fully_connected(&f, &ns)?;
/// assert_eq!(gate.device_count(), 4);
/// assert!(gate.verify()?.is_fully_connected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dpdn {
    pub(crate) network: SwitchNetwork,
    pub(crate) x: NodeId,
    pub(crate) y: NodeId,
    pub(crate) z: NodeId,
    pub(crate) function: Expr,
    pub(crate) namespace: Namespace,
    pub(crate) style: DpdnStyle,
}

/// How a [`Dpdn`] was constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DpdnStyle {
    /// A genuine (conventional) DPDN: two dual series-parallel branches that
    /// minimise device count, as used in CVSL (paper Fig. 2 left).
    Genuine,
    /// A fully connected DPDN produced by the paper's §4.1/§4.2 procedure.
    FullyConnected,
    /// An enhanced fully connected DPDN with inserted pass gates (§5).
    Enhanced,
}

impl fmt::Display for DpdnStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DpdnStyle::Genuine => "genuine",
            DpdnStyle::FullyConnected => "fully-connected",
            DpdnStyle::Enhanced => "enhanced",
        };
        write!(f, "{s}")
    }
}

impl Dpdn {
    /// Builds a DPDN from already-assembled parts, verifying the basic
    /// structural invariants.
    ///
    /// # Errors
    ///
    /// Returns an error if the network fails structural validation or the
    /// terminals are not distinct.
    pub fn from_parts(
        network: SwitchNetwork,
        x: NodeId,
        y: NodeId,
        z: NodeId,
        function: Expr,
        namespace: Namespace,
        style: DpdnStyle,
    ) -> Result<Self> {
        network.validate()?;
        if x == y || x == z || y == z {
            return Err(DpdnError::Netlist(
                dpl_netlist::NetlistError::DegenerateTerminals,
            ));
        }
        Ok(Dpdn {
            network,
            x,
            y,
            z,
            function,
            namespace,
            style,
        })
    }

    /// The underlying switch network.
    pub fn network(&self) -> &SwitchNetwork {
        &self.network
    }

    /// The module output node X (true branch).
    pub fn x(&self) -> NodeId {
        self.x
    }

    /// The module output node Y (false branch).
    pub fn y(&self) -> NodeId {
        self.y
    }

    /// The common node Z (connected to the clocked tail transistor).
    pub fn z(&self) -> NodeId {
        self.z
    }

    /// The Boolean function implemented by the X–Z branch.
    pub fn function(&self) -> &Expr {
        &self.function
    }

    /// The signal names of the gate inputs.
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// How this network was constructed.
    pub fn style(&self) -> DpdnStyle {
        self.style
    }

    /// Number of gate inputs.
    pub fn input_count(&self) -> usize {
        self.namespace.len()
    }

    /// Total number of transistors, including dummy pass-gate devices.
    pub fn device_count(&self) -> usize {
        self.network.switch_count()
    }

    /// Number of functional (non-dummy) transistors.
    pub fn functional_device_count(&self) -> usize {
        self.network.functional_switch_count()
    }

    /// Number of dummy (pass-gate) transistors inserted by the enhancement.
    pub fn dummy_device_count(&self) -> usize {
        self.network.dummy_switch_count()
    }

    /// The internal nodes of the network.
    pub fn internal_nodes(&self) -> Vec<NodeId> {
        self.network.internal_nodes()
    }

    /// Extracts the conduction function of the X–Z branch as a truth table.
    ///
    /// # Errors
    ///
    /// Returns [`DpdnError::TooManyInputs`] if the gate has more inputs than
    /// the exhaustive enumeration limit.
    pub fn true_conduction(&self) -> Result<TruthTable> {
        self.check_enumerable()?;
        Ok(self
            .network
            .conduction_table(self.x, self.z, self.input_count())?)
    }

    /// Extracts the conduction function of the Y–Z branch as a truth table.
    ///
    /// # Errors
    ///
    /// Returns [`DpdnError::TooManyInputs`] if the gate has more inputs than
    /// the exhaustive enumeration limit.
    pub fn false_conduction(&self) -> Result<TruthTable> {
        self.check_enumerable()?;
        Ok(self
            .network
            .conduction_table(self.y, self.z, self.input_count())?)
    }

    pub(crate) fn check_enumerable(&self) -> Result<()> {
        if self.input_count() > MAX_EXHAUSTIVE_INPUTS {
            return Err(DpdnError::TooManyInputs {
                inputs: self.input_count(),
                maximum: MAX_EXHAUSTIVE_INPUTS,
            });
        }
        Ok(())
    }

    /// Writes the network as a SPICE-like `.subckt` block.
    pub fn to_spice(&self, cell_name: &str) -> String {
        spice::write_subckt(
            &self.network,
            &self.namespace,
            cell_name,
            &[self.x, self.y, self.z],
        )
    }

    /// Runs the full verification suite on this network.
    ///
    /// This is a convenience wrapper around [`crate::verify::verify`].
    ///
    /// # Errors
    ///
    /// Propagates verification errors (for example too many inputs).
    pub fn verify(&self) -> Result<crate::verify::VerificationReport> {
        crate::verify::verify(self)
    }
}

impl fmt::Display for Dpdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} DPDN for {} ({} inputs, {} devices, {} internal nodes)",
            self.style,
            self.function.display(&self.namespace),
            self.input_count(),
            self.device_count(),
            self.internal_nodes().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpl_logic::parse_expr;

    #[test]
    fn accessors_and_display() {
        let (f, ns) = parse_expr("A.B").unwrap();
        let gate = Dpdn::fully_connected(&f, &ns).unwrap();
        assert_eq!(gate.input_count(), 2);
        assert_eq!(gate.device_count(), 4);
        assert_eq!(gate.functional_device_count(), 4);
        assert_eq!(gate.dummy_device_count(), 0);
        assert_eq!(gate.style(), DpdnStyle::FullyConnected);
        assert_eq!(gate.namespace().len(), 2);
        assert_eq!(gate.function().display(gate.namespace()).to_string(), "A.B");
        let text = gate.to_string();
        assert!(text.contains("fully-connected"));
        assert!(text.contains("A.B"));
        assert_ne!(gate.x(), gate.y());
        assert_ne!(gate.y(), gate.z());
    }

    #[test]
    fn spice_export_contains_terminals() {
        let (f, ns) = parse_expr("A.B").unwrap();
        let gate = Dpdn::fully_connected(&f, &ns).unwrap();
        let text = gate.to_spice("and_nand_fc");
        assert!(text.contains(".subckt and_nand_fc X Y Z"));
        assert!(text.contains(".ends"));
    }

    #[test]
    fn style_display() {
        assert_eq!(DpdnStyle::Genuine.to_string(), "genuine");
        assert_eq!(DpdnStyle::FullyConnected.to_string(), "fully-connected");
        assert_eq!(DpdnStyle::Enhanced.to_string(), "enhanced");
    }

    #[test]
    fn from_parts_validates() {
        let (f, ns) = parse_expr("A.B").unwrap();
        let gate = Dpdn::fully_connected(&f, &ns).unwrap();
        // Rebuild from parts: should succeed.
        let rebuilt = Dpdn::from_parts(
            gate.network().clone(),
            gate.x(),
            gate.y(),
            gate.z(),
            gate.function().clone(),
            gate.namespace().clone(),
            DpdnStyle::FullyConnected,
        );
        assert!(rebuilt.is_ok());
        // Degenerate terminals are rejected.
        let bad = Dpdn::from_parts(
            gate.network().clone(),
            gate.x(),
            gate.x(),
            gate.z(),
            gate.function().clone(),
            gate.namespace().clone(),
            DpdnStyle::FullyConnected,
        );
        assert!(bad.is_err());
    }
}

//! CLI telemetry plumbing: the `--metrics <file>` / `--report json|text` /
//! `--trace <file>` / `--progress` flags shared by `repro capture`,
//! `attack`, `tvla`, `mtd` and `verify`.
//!
//! A [`TelemetrySession`] owns one [`dpl_obs::Obs`] handle for the whole
//! subcommand.  The subcommand attaches it to its readers/writers (or
//! passes it to the `*_observed` entry points), and [`TelemetrySession::finish`]
//! exports whatever was recorded: JSON-lines to the `--metrics` file, a
//! Chrome `trace_event` document to the `--trace` file, and a
//! [`dpl_obs::RunReport`] rendered to stdout for `--report`.  `--progress`
//! streams chunk-granular progress lines to stderr while the command runs.
//!
//! `finish` runs on **every** exit path, success or failure, so a crashed
//! campaign still flushes the partial telemetry it recorded up to the
//! failure — often exactly the evidence needed to diagnose it.

use dpl_obs::{Collector, JsonLines, Obs, RunReport, TraceEventJson};

/// Which rendering `--report` asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// The pretty-printed [`RunReport`] JSON document.
    Json,
    /// The indented human-readable span tree + metric tables.
    Text,
}

/// One subcommand's telemetry: the shared [`Obs`] handle plus where its
/// snapshot goes when the command finishes.
#[derive(Debug)]
pub struct TelemetrySession {
    obs: Obs,
    metrics_path: Option<String>,
    trace_path: Option<String>,
    progress: bool,
    report: Option<ReportFormat>,
}

impl TelemetrySession {
    /// Extracts `--metrics <path>`, `--trace <path>`, `--progress` and
    /// `--report json|text` from an argument list, returning the remaining
    /// arguments and the session (when any of the flags was present).
    ///
    /// # Errors
    ///
    /// Returns a rendered message when a flag is missing its value or the
    /// `--report` format is unknown.
    pub fn from_args(args: &[String]) -> Result<(Vec<String>, Option<TelemetrySession>), String> {
        let mut rest = Vec::new();
        let mut metrics_path = None;
        let mut trace_path = None;
        let mut progress = false;
        let mut report = None;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--metrics" => match iter.next() {
                    Some(path) => metrics_path = Some(path.clone()),
                    None => return Err("--metrics needs a file path".into()),
                },
                "--trace" => match iter.next() {
                    Some(path) => trace_path = Some(path.clone()),
                    None => return Err("--trace needs a file path".into()),
                },
                "--progress" => progress = true,
                "--report" => match iter.next().map(String::as_str) {
                    Some("json") => report = Some(ReportFormat::Json),
                    Some("text") => report = Some(ReportFormat::Text),
                    _ => return Err("--report needs one of: json, text".into()),
                },
                _ => rest.push(arg.clone()),
            }
        }
        let session =
            if metrics_path.is_some() || trace_path.is_some() || progress || report.is_some() {
                Some(TelemetrySession {
                    obs: Obs::monotonic(),
                    metrics_path,
                    trace_path,
                    progress,
                    report,
                })
            } else {
                None
            };
        Ok((rest, session))
    }

    /// The session's observability handle (clone it into readers/writers).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Enables the live progress plane when `--progress` was given: the
    /// instrumented folds report done/total counts, a rolling rate and an
    /// ETA as plain lines on stderr.  A no-op without the flag, so the
    /// other exports stay byte-identical whether or not progress is shown.
    pub fn start_progress(&self, total: Option<u64>, unit: &str) {
        if self.progress {
            self.obs
                .enable_progress(total, unit, Box::new(std::io::stderr()));
        }
    }

    /// Snapshots the telemetry and exports it: JSON-lines to the
    /// `--metrics` file, a Chrome `trace_event` JSON document to the
    /// `--trace` file (load it in Perfetto or `chrome://tracing`), and the
    /// rendered `--report` document as the returned string (empty without
    /// `--report`).
    ///
    /// # Errors
    ///
    /// Returns a rendered message when an output file cannot be written.
    pub fn finish(self, command: &str) -> Result<String, String> {
        let telemetry = self.obs.snapshot();
        if let Some(path) = &self.metrics_path {
            let mut bytes = Vec::new();
            JsonLines
                .collect(&telemetry, &mut bytes)
                .map_err(|e| format!("cannot render telemetry for {path}: {e}"))?;
            std::fs::write(path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = &self.trace_path {
            let mut bytes = Vec::new();
            TraceEventJson
                .collect(&telemetry, &mut bytes)
                .map_err(|e| format!("cannot render trace events for {path}: {e}"))?;
            std::fs::write(path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        let rendered = match self.report {
            None => String::new(),
            Some(format) => {
                let report = RunReport::new(command, telemetry);
                match format {
                    ReportFormat::Json => report.render_json(),
                    ReportFormat::Text => report.render_text(),
                }
            }
        };
        Ok(rendered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn absent_flags_yield_no_session() {
        let (rest, session) =
            TelemetrySession::from_args(&strings(&["file.dpltrc", "--dpa"])).unwrap();
        assert_eq!(rest, strings(&["file.dpltrc", "--dpa"]));
        assert!(session.is_none());
    }

    #[test]
    fn flags_are_extracted_and_order_preserved() {
        let (rest, session) = TelemetrySession::from_args(&strings(&[
            "a.dpltrc",
            "--metrics",
            "m.jsonl",
            "--dpa",
            "--report",
            "text",
        ]))
        .unwrap();
        assert_eq!(rest, strings(&["a.dpltrc", "--dpa"]));
        let session = session.unwrap();
        assert_eq!(session.metrics_path.as_deref(), Some("m.jsonl"));
        assert_eq!(session.report, Some(ReportFormat::Text));
    }

    #[test]
    fn trace_and_progress_flags_create_a_session() {
        let (rest, session) =
            TelemetrySession::from_args(&strings(&["a.dpltrc", "--trace", "t.json"])).unwrap();
        assert_eq!(rest, strings(&["a.dpltrc"]));
        let session = session.unwrap();
        assert_eq!(session.trace_path.as_deref(), Some("t.json"));
        assert!(!session.progress);

        let (rest, session) =
            TelemetrySession::from_args(&strings(&["a.dpltrc", "--progress"])).unwrap();
        assert_eq!(rest, strings(&["a.dpltrc"]));
        assert!(session.unwrap().progress);
    }

    #[test]
    fn bad_report_format_is_rejected() {
        assert!(TelemetrySession::from_args(&strings(&["--report", "xml"])).is_err());
        assert!(TelemetrySession::from_args(&strings(&["--metrics"])).is_err());
        assert!(TelemetrySession::from_args(&strings(&["--trace"])).is_err());
    }
}

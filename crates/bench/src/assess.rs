//! Leakage-assessment experiments: TVLA reports over archives,
//! measurements-to-disclosure sweeps across the paper's logic styles, and
//! characterisation-table reports
//! (`repro tvla`, `repro mtd`, `repro info`, `repro charac-table`).

use std::fmt::Write as _;

use dpl_cells::CapacitanceModel;
use dpl_core::GateKind;
use dpl_crypto::{
    present_sbox, simulate_traces_with_table, synthesize_library_circuit, synthesize_sbox_with_key,
    EnergyCache, EnergyModel, GateEnergyTable, GateNetlist, LeakageModel, LeakageOptions,
};
use dpl_eval::{
    interleaved_partition, mtd_campaign, mtd_campaign_observed, tvla_parallel_with, tvla_salvage,
    tvla_streaming, tvla_streaming_second_order, MtdConfig, MtdCurve, PrefixCpa, PrefixDpa,
    TvlaOrder, TvlaResult, TVLA_THRESHOLD,
};
use dpl_obs::{Json, Obs};
use dpl_store::{
    is_manifest_file, ArchiveReader, CampaignKind, ChunkSource, DamageReport, ReadPolicy,
    RetryPolicy, ShardedReader,
};

/// The fixed plaintext nibble of every CLI TVLA campaign (the random group
/// draws uniformly from all 16 nibbles, collisions included, per the TVLA
/// methodology).
pub const TVLA_FIXED_PLAINTEXT: u64 = 0x3;

/// The default trace-count grid of `repro mtd`.
pub const MTD_GRID: &[usize] = &[25, 50, 100, 200, 400, 800, 1600, 3200];

/// Which attack a measurements-to-disclosure sweep replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtdAttack {
    /// Difference-of-means DPA with the classic S-box selection bit.
    Dpa,
    /// Profiled CPA: the hypothesis is the device's own gate-level energy
    /// model (the strongest first-order attacker of the paper's threat
    /// discussion).
    Cpa,
}

impl MtdAttack {
    /// A short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            MtdAttack::Dpa => "difference-of-means DPA",
            MtdAttack::Cpa => "profiled CPA",
        }
    }
}

/// The secret key nibble of every MTD campaign (matches the `repro`
/// campaign key).
const MTD_KEY: u8 = 0xA;

/// The attack-target circuit of a CLI campaign: the classic key-mixing +
/// PRESENT S-box datapath, or a key-mixed single-library-cell datapath
/// (`dpl_crypto::synthesize_library_circuit`) for any standard cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitChoice {
    /// The key-mixing + PRESENT S-box datapath (the historical default).
    Sbox,
    /// A key-mixed datapath around one standard-library cell.
    Cell(GateKind),
}

impl CircuitChoice {
    /// Parses a circuit name: `sbox`, or any library gate name (`oai22`,
    /// `maj3`, ... — case insensitive).
    pub fn parse(name: &str) -> Option<CircuitChoice> {
        if name.eq_ignore_ascii_case("sbox") {
            return Some(CircuitChoice::Sbox);
        }
        GateKind::by_name(name).ok().map(CircuitChoice::Cell)
    }

    /// The canonical CLI name.
    pub fn name(&self) -> String {
        match self {
            CircuitChoice::Sbox => "sbox".into(),
            CircuitChoice::Cell(kind) => kind.name().to_ascii_lowercase(),
        }
    }

    /// A human-readable description.
    pub fn label(&self) -> String {
        match self {
            CircuitChoice::Sbox => "key-mixing + PRESENT S-box datapath".into(),
            CircuitChoice::Cell(kind) => format!("key-mixed {} library-cell datapath", kind),
        }
    }

    /// Synthesises the circuit.
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails (a bug, not an input error).
    pub fn netlist(&self) -> GateNetlist {
        match self {
            CircuitChoice::Sbox => synthesize_sbox_with_key().expect("synthesis"),
            CircuitChoice::Cell(kind) => {
                synthesize_library_circuit(*kind).expect("library circuit synthesis")
            }
        }
    }

    /// The difference-of-means DPA selection function of the circuit: the
    /// classic `HW(sbox(p ^ g)) >= 2` bit for the S-box datapath, and the
    /// majority of the circuit's output bits for library-cell datapaths
    /// (precomputed over the 16x16 plaintext/guess nibble space).
    pub fn dpa_selection(&self) -> impl Fn(u64, u64) -> bool + Clone {
        let table: Option<[[bool; 16]; 16]> = match self {
            CircuitChoice::Sbox => None,
            CircuitChoice::Cell(_) => {
                let netlist = self.netlist();
                let outputs = netlist.outputs().len() as u32;
                let mut table = [[false; 16]; 16];
                for (guess, row) in table.iter_mut().enumerate() {
                    for (plaintext, bit) in row.iter_mut().enumerate() {
                        let input = plaintext as u64 | ((guess as u64) << 4);
                        *bit = 2 * netlist.evaluate(input).0.count_ones() >= outputs;
                    }
                }
                Some(table)
            }
        };
        move |plaintext: u64, guess: u64| match &table {
            None => present_sbox((plaintext ^ guess) as u8).count_ones() >= 2,
            Some(table) => table[(guess & 0xF) as usize][(plaintext & 0xF) as usize],
        }
    }
}

/// One measurements-to-disclosure sweep of a single (model, circuit) pair.
#[allow(clippy::too_many_arguments)]
fn mtd_curve_for(
    netlist: &GateNetlist,
    table: &GateEnergyTable,
    circuit: CircuitChoice,
    seed: u64,
    grid: &[usize],
    repetitions: usize,
    attack: MtdAttack,
    obs: Option<&Obs>,
) -> MtdCurve {
    let cache = EnergyCache::new(netlist, table);
    let config = MtdConfig::new(grid.to_vec(), repetitions, seed);
    let generate = |rep_seed: u64, n: usize| {
        let options = LeakageOptions {
            relative_noise: 0.02,
            seed: rep_seed,
        };
        simulate_traces_with_table(netlist, table, MTD_KEY, n, &options)
    };
    match attack {
        MtdAttack::Dpa => {
            let selection = circuit.dpa_selection();
            let make = move || {
                let selection = selection.clone();
                PrefixDpa::new(16, selection)
            };
            match obs {
                Some(obs) => {
                    mtd_campaign_observed(&config, u64::from(MTD_KEY), generate, make, obs)
                }
                None => mtd_campaign(&config, u64::from(MTD_KEY), generate, make),
            }
        }
        MtdAttack::Cpa => {
            let make = || {
                let cache = cache.clone();
                PrefixCpa::new(16, move |plaintext, guess| {
                    cache.energy(plaintext, guess as u8)
                })
            };
            match obs {
                Some(obs) => {
                    mtd_campaign_observed(&config, u64::from(MTD_KEY), generate, make, obs)
                }
                None => mtd_campaign(&config, u64::from(MTD_KEY), generate, make),
            }
        }
    }
    .expect("mtd campaign")
}

/// Runs the measurements-to-disclosure sweep for every built-in leakage
/// model over the S-box datapath and returns the per-model curves,
/// deterministically in `seed`.
///
/// # Panics
///
/// Panics if the S-box datapath cannot be synthesised or the sweep
/// configuration is invalid (both would be bugs, not input errors).
pub fn mtd_curves(
    seed: u64,
    grid: &[usize],
    repetitions: usize,
    attack: MtdAttack,
) -> Vec<(LeakageModel, MtdCurve)> {
    mtd_curves_observed(seed, grid, repetitions, attack, None)
}

/// [`mtd_curves`] with optional telemetry: when `obs` is given, every
/// per-model campaign runs through the observed sweep (spans plus
/// grid/repetition/trace counters).
///
/// # Panics
///
/// As [`mtd_curves`].
pub fn mtd_curves_observed(
    seed: u64,
    grid: &[usize],
    repetitions: usize,
    attack: MtdAttack,
    obs: Option<&Obs>,
) -> Vec<(LeakageModel, MtdCurve)> {
    let netlist = synthesize_sbox_with_key().expect("synthesis");
    let capacitance = CapacitanceModel::default();
    let mut curves = Vec::new();
    for &model in LeakageModel::all() {
        let table = GateEnergyTable::build(model, &capacitance).expect("energy table");
        let curve = mtd_curve_for(
            &netlist,
            &table,
            CircuitChoice::Sbox,
            seed,
            grid,
            repetitions,
            attack,
            obs,
        );
        if let Some(obs) = obs {
            obs.progress_advance(1);
        }
        curves.push((model, curve));
    }
    curves
}

/// Experiment: measurements-to-disclosure across every leakage model —
/// the paper's core quantitative comparison (`repro mtd`).
pub fn mtd_experiment(seed: u64, grid: &[usize], repetitions: usize, attack: MtdAttack) -> String {
    mtd_experiment_observed(seed, grid, repetitions, attack, None)
}

/// [`mtd_experiment`] with optional telemetry (the `repro mtd --metrics`
/// path).
pub fn mtd_experiment_observed(
    seed: u64,
    grid: &[usize],
    repetitions: usize,
    attack: MtdAttack,
    obs: Option<&Obs>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n=== Measurements to disclosure — {} over the PRESENT S-box datapath ===",
        attack.label()
    );
    let _ = writeln!(
        out,
        "secret key nibble = {MTD_KEY:#X}, {repetitions} repetitions per grid point, 2 % noise, \
         seed = {seed}, disclosure threshold = 80 % success rate"
    );
    let _ = writeln!(out, "trace grid: {grid:?}");
    for (model, curve) in mtd_curves_observed(seed, grid, repetitions, attack, obs) {
        render_mtd_curve(&mut out, model.label(), &curve, grid);
    }
    let _ = writeln!(
        out,
        "expected shape: the Hamming-weight (standard CMOS) implementation discloses at the \
         bottom of the grid; the genuine-DPDN SABL needs substantially more traces, and the \
         fully connected / enhanced SABL implementations never disclose — the paper's \
         resistance ordering."
    );
    out
}

/// Renders one MTD curve in the sweep's row format.
fn render_mtd_curve(out: &mut String, label: &str, curve: &MtdCurve, grid: &[usize]) {
    let sr: Vec<String> = curve
        .success_rate
        .iter()
        .map(|r| format!("{r:.2}"))
        .collect();
    let ge: Vec<String> = curve
        .guessing_entropy
        .iter()
        .map(|g| format!("{g:.1}"))
        .collect();
    let mtd = match curve.mtd {
        Some(n) => format!("{n} traces"),
        None => format!("> {} traces (no disclosure observed)", grid.last().unwrap()),
    };
    let _ = writeln!(out, "{label:>32}: MTD = {mtd}");
    let _ = writeln!(out, "{:>32}  success rate  [{}]", "", sr.join(" "));
    let _ = writeln!(out, "{:>32}  mean key rank [{}]", "", ge.join(" "));
}

/// Experiment: measurements-to-disclosure of a **single energy model** —
/// including characterisation-derived models — over any CLI circuit
/// (`repro mtd --model <name> [--circuit <name>]`).
///
/// # Panics
///
/// Panics if synthesis, table construction or the sweep fail (bugs, not
/// input errors).
pub fn mtd_experiment_for(
    model: EnergyModel,
    circuit: CircuitChoice,
    seed: u64,
    grid: &[usize],
    repetitions: usize,
    attack: MtdAttack,
) -> String {
    mtd_experiment_for_observed(model, circuit, seed, grid, repetitions, attack, None)
}

/// [`mtd_experiment_for`] with optional telemetry (the
/// `repro mtd --model ... --metrics` path).
///
/// # Panics
///
/// As [`mtd_experiment_for`].
#[allow(clippy::too_many_arguments)]
pub fn mtd_experiment_for_observed(
    model: EnergyModel,
    circuit: CircuitChoice,
    seed: u64,
    grid: &[usize],
    repetitions: usize,
    attack: MtdAttack,
    obs: Option<&Obs>,
) -> String {
    let netlist = circuit.netlist();
    let capacitance = CapacitanceModel::default();
    let table = GateEnergyTable::for_circuit(model, &capacitance, &netlist).expect("energy table");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n=== Measurements to disclosure — {} over the {} ===",
        attack.label(),
        circuit.label()
    );
    let _ = writeln!(
        out,
        "secret key nibble = {MTD_KEY:#X}, {repetitions} repetitions per grid point, 2 % noise, \
         seed = {seed}, disclosure threshold = 80 % success rate"
    );
    let _ = writeln!(out, "trace grid: {grid:?}");
    if model.is_characterized() {
        let _ = writeln!(
            out,
            "energy table: transient-characterized, digest = {:#018X}",
            table.digest()
        );
    }
    let curve = mtd_curve_for(
        &netlist,
        &table,
        circuit,
        seed,
        grid,
        repetitions,
        attack,
        obs,
    );
    if let Some(obs) = obs {
        obs.progress_advance(1);
    }
    render_mtd_curve(&mut out, &model.label(), &curve, grid);
    out
}

/// Report of one cell's per-event energy row under an energy model
/// (`repro charac-table <gate> [--model <name>]`): the characterized
/// (transient-simulated) or built-in (analytic) energies, their spread and
/// the digest of the resulting single-cell table.
///
/// # Errors
///
/// Returns a rendered error message when the table cannot be built.
pub fn charac_table_report(kind: GateKind, model: EnergyModel) -> Result<String, String> {
    let capacitance = CapacitanceModel::default();
    let table = if model.is_characterized() {
        GateEnergyTable::characterized(model.style, &capacitance, &[kind])
    } else {
        GateEnergyTable::builtin(model.style, &capacitance)
    }
    .map_err(|e| format!("cannot build the {} table for {kind}: {e}", model.name()))?;
    let op = dpl_crypto::GateOp::cell(kind);
    let events = 1usize << kind.arity();
    let row = table.event_energies(op);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n=== Energy table row — {} under {} ===",
        kind.name(),
        model.label()
    );
    let _ = writeln!(
        out,
        "source: {}",
        if model.is_characterized() && model.style != LeakageModel::HammingWeight {
            "transient simulation of the SABL cell (one precharge/evaluate cycle per event)"
        } else if model.is_characterized() {
            "built-in constants (the Hamming-weight style has no differential cell)"
        } else {
            "analytic charge-sharing constants (DischargeProfile)"
        }
    );
    let _ = writeln!(out, "{:>10} {:>14}", "event", "energy (fJ)");
    for (assignment, &energy) in row.iter().enumerate().take(events) {
        let _ = writeln!(
            out,
            "{:>10} {:>14.4}",
            format!("{assignment:0width$b}", width = kind.arity()),
            energy * 1e15
        );
    }
    let max = row[..events]
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let min = row[..events].iter().copied().fold(f64::INFINITY, f64::min);
    let ned = if max > 0.0 { (max - min) / max } else { 0.0 };
    let _ = writeln!(
        out,
        "spread: max - min = {:.4} fJ, NED (max-min)/max = {:.2} %",
        (max - min) * 1e15,
        100.0 * ned
    );
    let _ = writeln!(out, "table digest: {:#018X}", table.digest());
    Ok(out)
}

fn render_tvla(out: &mut String, order: TvlaOrder, result: &TvlaResult) {
    let max_t = result.max_abs_t();
    let verdict = if result.leaks() {
        "LEAKAGE DETECTED"
    } else {
        "no leakage detected"
    };
    let _ = writeln!(
        out,
        "{:>34}: max |t| = {max_t:.2} over {} samples, groups = {} fixed / {} random -> \
         {verdict} (threshold {TVLA_THRESHOLD})",
        order.label(),
        result.t.len(),
        result.counts[0],
        result.counts[1],
    );
}

/// Experiment: streaming TVLA over an interleaved fixed-vs-random archive
/// (`repro tvla <file>`).  `orders` selects first-order, second-order or
/// both; `workers` switches to the sample-sharded parallel fold.
///
/// # Errors
///
/// Returns a rendered error message for unreadable archives or a
/// non-TVLA campaign.
pub fn tvla_report(
    path: &str,
    orders: &[TvlaOrder],
    workers: Option<usize>,
) -> Result<String, String> {
    tvla_report_observed(path, orders, workers, None)
}

/// [`tvla_report`] with optional telemetry: the reader's chunk counters
/// and the fold's span/throughput gauges land in `obs`.  The `--workers`
/// path runs through [`dpl_eval::tvla_parallel_observed`], so the parallel fold's
/// span, merge phase and reunion counters land there too (its shards still
/// open their own unobserved readers).
///
/// # Errors
///
/// As [`tvla_report`].
pub fn tvla_report_observed(
    path: &str,
    orders: &[TvlaOrder],
    workers: Option<usize>,
    obs: Option<&Obs>,
) -> Result<String, String> {
    if is_manifest_file(path) {
        let mut source =
            ShardedReader::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        if let Some(obs) = obs {
            source.set_obs(obs);
        }
        let shards = source.shard_count();
        return tvla_report_body(
            path,
            &mut source,
            || ShardedReader::open(path),
            Some(shards),
            orders,
            workers,
            obs,
        );
    }
    let mut reader = ArchiveReader::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    if let Some(obs) = obs {
        reader.set_obs(obs);
    }
    tvla_report_body(
        path,
        &mut reader,
        || ArchiveReader::open(path),
        None,
        orders,
        workers,
        obs,
    )
}

/// The shared body of [`tvla_report_observed`]: the campaign check, header
/// line and per-order folds, generic over the chunk source (single archive
/// or sharded campaign).  `open` re-opens the source for the parallel fold's
/// per-worker readers.
fn tvla_report_body<S, O>(
    path: &str,
    source: &mut S,
    open: O,
    shards: Option<usize>,
    orders: &[TvlaOrder],
    workers: Option<usize>,
    obs: Option<&Obs>,
) -> Result<String, String>
where
    S: ChunkSource,
    O: Fn() -> dpl_store::Result<S> + Sync,
{
    let meta = *source.meta();
    if meta.campaign != CampaignKind::TvlaInterleaved {
        return Err(format!(
            "{path} records a `{}` campaign; the t-test needs an interleaved fixed-vs-random \
             capture (repro capture --tvla)",
            meta.campaign.label()
        ));
    }
    let mut out = String::new();
    let sharded = match shards {
        Some(n) => format!(" ({n} shards)"),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "\n=== TVLA — Welch t-test over {path}{sharded} ===\n{} traces, {} samples/trace, \
         model = {}, seed = {}",
        source.trace_count(),
        source.samples_per_trace(),
        meta.model.label(),
        meta.seed
    );
    for &order in orders {
        let result = match workers {
            Some(workers) => {
                tvla_parallel_with(&open, interleaved_partition, order, Some(workers), obs)
            }
            None => match order {
                TvlaOrder::First => tvla_streaming(source, interleaved_partition),
                TvlaOrder::Second => tvla_streaming_second_order(source, interleaved_partition),
            },
        }
        .map_err(|e| format!("t-test over {path} failed: {e}"))?;
        render_tvla(&mut out, order, &result);
    }
    Ok(out)
}

/// Salvage-mode [`tvla_report`]: the t-test over whatever chunks of a
/// damaged TVLA archive survive, with the damage rendered alongside the
/// statistic (`repro tvla <file> --salvage`).
///
/// # Errors
///
/// Returns a rendered error message for unreadable archives, a non-TVLA
/// campaign, or damage that leaves no usable traces.
pub fn tvla_salvage_report(path: &str, orders: &[TvlaOrder]) -> Result<String, String> {
    tvla_salvage_report_observed(path, orders, None)
}

/// [`tvla_salvage_report`] with optional telemetry: salvage drops, retry
/// attempts and the fold's span/throughput gauges land in `obs`.
///
/// # Errors
///
/// As [`tvla_salvage_report`].
pub fn tvla_salvage_report_observed(
    path: &str,
    orders: &[TvlaOrder],
    obs: Option<&Obs>,
) -> Result<String, String> {
    let mut reader = ArchiveReader::open_with_policy(path, ReadPolicy::Salvage)
        .map_err(|e| format!("cannot open {path}: {e}"))?;
    if let Some(obs) = obs {
        reader.set_obs(obs);
    }
    if reader.campaign() != CampaignKind::TvlaInterleaved {
        return Err(format!(
            "{path} records a `{}` campaign; the t-test needs an interleaved fixed-vs-random \
             capture (repro capture --tvla)",
            reader.campaign().label()
        ));
    }
    let retry = RetryPolicy::new(2);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n=== TVLA (salvage) — Welch t-test over {path} ===\n{} traces promised, {} \
         samples/trace, model = {}, seed = {}",
        reader.trace_count(),
        reader.samples_per_trace(),
        reader.meta().model.label(),
        reader.meta().seed
    );
    for &order in orders {
        let (result, damage) = tvla_salvage(&mut reader, interleaved_partition, order, &retry)
            .map_err(|e| format!("salvage t-test over {path} failed: {e}"))?;
        let _ = writeln!(out, "salvage: {}", damage.render());
        render_tvla(&mut out, order, &result);
    }
    Ok(out)
}

/// `repro info <file>`: renders an archive's header metadata without
/// touching any chunk data.
///
/// # Errors
///
/// Returns a rendered error message when the archive cannot be opened.
pub fn info_report(path: &str) -> Result<String, String> {
    if is_manifest_file(path) {
        return campaign_info_report(path);
    }
    let reader = ArchiveReader::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let meta = reader.meta();
    let mut out = String::new();
    let _ = writeln!(out, "{path}:");
    let _ = writeln!(out, "  format version:       {}", reader.format_version());
    let _ = writeln!(out, "  campaign kind:        {}", meta.campaign.label());
    let _ = writeln!(out, "  leakage model:        {}", meta.model.label());
    let _ = writeln!(out, "  campaign seed:        {}", meta.seed);
    let _ = writeln!(out, "  traces:               {}", reader.trace_count());
    let _ = writeln!(out, "  samples per trace:    {}", meta.samples_per_trace);
    let _ = writeln!(
        out,
        "  chunks:               {} of up to {} traces",
        reader.chunk_count(),
        meta.chunk_traces
    );
    let distinct = match reader.distinct_inputs() {
        Some(n) => n.to_string(),
        None => format!(
            "more than {} (class aggregation disabled)",
            dpl_power::MAX_INPUT_CLASSES
        ),
    };
    let _ = writeln!(out, "  distinct inputs:      {distinct}");
    render_encoding_lines(&mut out, meta);
    if let Some(digest) = reader.table_digest() {
        let _ = writeln!(out, "  energy-table digest:  {digest:#018X}");
    }
    Ok(out)
}

/// The version-3 encoding lines of `repro info`, omitted for plain `f64` /
/// uncompressed archives so legacy reports render unchanged.
fn render_encoding_lines(out: &mut String, meta: &dpl_store::ArchiveMeta) {
    if meta.format_version() < 3 {
        return;
    }
    let _ = writeln!(out, "  sample encoding:      {}", meta.encoding.label());
    let _ = writeln!(out, "  compression:          {}", meta.compression.label());
    if let Some(q) = meta.encoding.quantization() {
        let _ = writeln!(
            out,
            "  quantization:         scale {:.6e} (max abs error {:.3e})",
            q.scale,
            q.max_error()
        );
    }
}

/// `repro info <manifest>`: campaign-level metadata plus the per-shard
/// table of a sharded campaign.
fn campaign_info_report(path: &str) -> Result<String, String> {
    let reader = ShardedReader::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let meta = *reader.meta();
    let manifest = reader.manifest();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: campaign manifest, {} shards",
        reader.shard_count()
    );
    let _ = writeln!(out, "  format version:       {}", meta.format_version());
    let _ = writeln!(out, "  campaign kind:        {}", meta.campaign.label());
    let _ = writeln!(out, "  leakage model:        {}", meta.model.label());
    let _ = writeln!(out, "  campaign seed:        {}", meta.seed);
    let _ = writeln!(out, "  traces:               {}", reader.trace_count());
    let _ = writeln!(out, "  samples per trace:    {}", meta.samples_per_trace);
    let _ = writeln!(
        out,
        "  chunks:               {} of up to {} traces",
        reader.chunk_count(),
        meta.chunk_traces
    );
    let distinct = match reader.distinct_inputs() {
        Some(n) => n.to_string(),
        None => format!(
            "more than {} (class aggregation disabled)",
            dpl_power::MAX_INPUT_CLASSES
        ),
    };
    let _ = writeln!(out, "  distinct inputs:      {distinct}");
    render_encoding_lines(&mut out, &meta);
    if meta.table_digest != 0 {
        let _ = writeln!(out, "  energy-table digest:  {:#018X}", meta.table_digest);
    }
    let _ = writeln!(out, "  campaign digest:      {:#018x}", manifest.digest());
    let _ = writeln!(out, "  shards:");
    for shard in manifest.shards() {
        let _ = writeln!(
            out,
            "    {:<24} traces {}..{} ({} traces)",
            shard.path,
            shard.start,
            shard.start + shard.traces,
            shard.traces
        );
    }
    Ok(out)
}

/// `repro info <file> --json [--fsck]`: the archive's header metadata as a
/// machine-readable JSON document — plus, with `fsck`, a full damage scan
/// (every chunk's checksum verified) summarised under a `damage` key.
///
/// # Errors
///
/// Returns a rendered error message when the archive cannot be opened (or,
/// with `fsck`, when the scan hard-fails on a non-chunk-local error).
pub fn info_json(path: &str, fsck: bool) -> Result<String, String> {
    if is_manifest_file(path) {
        return campaign_info_json(path, fsck);
    }
    // The fsck scan tolerates chunk damage and a wrong file length by
    // design; a plain header dump keeps the strict policy `repro info`
    // always had.
    let policy = if fsck {
        ReadPolicy::Salvage
    } else {
        ReadPolicy::Strict
    };
    let mut reader = ArchiveReader::open_with_policy(path, policy)
        .map_err(|e| format!("cannot open {path}: {e}"))?;
    let meta = *reader.meta();
    let mut fields = vec![
        ("info", Json::str("dpl-store.archive/v1")),
        ("path", Json::str(path)),
        (
            "format_version",
            Json::U64(u64::from(reader.format_version())),
        ),
        ("campaign", Json::str(meta.campaign.label())),
        ("model", Json::str(meta.model.label())),
        ("seed", Json::U64(meta.seed)),
        ("traces", Json::U64(reader.trace_count())),
        (
            "samples_per_trace",
            Json::U64(meta.samples_per_trace as u64),
        ),
        ("chunks", Json::U64(reader.chunk_count() as u64)),
        ("chunk_traces", Json::U64(meta.chunk_traces as u64)),
        (
            "distinct_inputs",
            match reader.distinct_inputs() {
                Some(n) => Json::U64(n as u64),
                None => Json::Null,
            },
        ),
        (
            "table_digest",
            match reader.table_digest() {
                Some(digest) => Json::str(format!("{digest:#018X}")),
                None => Json::Null,
            },
        ),
    ];
    fields.extend(encoding_json_fields(&meta));
    if fsck {
        let retry = RetryPolicy::new(2);
        let report = reader
            .scan(&retry)
            .map_err(|e| format!("fsck of {path} failed: {e}"))?;
        fields.push(("damage", damage_json(&report)));
    }
    let mut out = Json::object(fields).render_pretty();
    out.push('\n');
    Ok(out)
}

/// The version-3 encoding fields of `repro info --json`, present for every
/// archive so consumers need no version sniffing.
fn encoding_json_fields(meta: &dpl_store::ArchiveMeta) -> Vec<(&'static str, Json)> {
    vec![
        ("encoding", Json::str(meta.encoding.label())),
        ("compression", Json::str(meta.compression.label())),
        (
            "quantization_scale",
            match meta.encoding.quantization() {
                Some(q) => Json::F64(q.scale),
                None => Json::Null,
            },
        ),
    ]
}

/// One damage scan summarised as the JSON object of `repro info --fsck`.
fn damage_json(report: &DamageReport) -> Json {
    let damaged = report
        .damaged
        .iter()
        .map(|d| {
            Json::object(vec![
                ("chunk", Json::U64(d.chunk as u64)),
                ("cause", Json::str(d.cause.to_string())),
                ("traces_lost", Json::U64(d.traces_lost as u64)),
            ])
        })
        .collect();
    Json::object(vec![
        ("clean", Json::Bool(report.is_clean())),
        ("chunks_scanned", Json::U64(report.chunks_scanned as u64)),
        ("traces_read", Json::U64(report.traces_read)),
        ("traces_total", Json::U64(report.traces_total)),
        ("traces_lost", Json::U64(report.traces_lost())),
        ("damaged_chunks", Json::Array(damaged)),
    ])
}

/// `repro info <manifest> --json [--fsck]`: the campaign's metadata, shard
/// table and (with `fsck`) per-shard damage scans as one JSON document.
fn campaign_info_json(path: &str, fsck: bool) -> Result<String, String> {
    let policy = if fsck {
        ReadPolicy::Salvage
    } else {
        ReadPolicy::Strict
    };
    let mut reader = ShardedReader::open_with_policy(path, policy)
        .map_err(|e| format!("cannot open {path}: {e}"))?;
    let meta = *reader.meta();
    let scans = if fsck {
        let retry = RetryPolicy::new(2);
        Some(
            reader
                .scan_shards(&retry)
                .map_err(|e| format!("fsck of {path} failed: {e}"))?,
        )
    } else {
        None
    };
    let manifest = reader.manifest();
    let shards = manifest
        .shards()
        .iter()
        .enumerate()
        .map(|(index, shard)| {
            let mut entry = vec![
                ("path", Json::str(&shard.path)),
                ("traces", Json::U64(shard.traces)),
                ("start", Json::U64(shard.start)),
            ];
            if let Some(scans) = &scans {
                entry.push(("damage", damage_json(&scans[index])));
            }
            Json::object(entry)
        })
        .collect();
    let mut fields = vec![
        ("info", Json::str("dpl-store.campaign/v1")),
        ("path", Json::str(path)),
        (
            "format_version",
            Json::U64(u64::from(meta.format_version())),
        ),
        ("campaign", Json::str(meta.campaign.label())),
        ("model", Json::str(meta.model.label())),
        ("seed", Json::U64(meta.seed)),
        ("traces", Json::U64(reader.trace_count())),
        (
            "samples_per_trace",
            Json::U64(meta.samples_per_trace as u64),
        ),
        ("chunks", Json::U64(reader.chunk_count() as u64)),
        ("chunk_traces", Json::U64(meta.chunk_traces as u64)),
        (
            "distinct_inputs",
            match reader.distinct_inputs() {
                Some(n) => Json::U64(n as u64),
                None => Json::Null,
            },
        ),
        (
            "table_digest",
            match meta.table_digest {
                0 => Json::Null,
                digest => Json::str(format!("{digest:#018X}")),
            },
        ),
    ];
    fields.extend(encoding_json_fields(&meta));
    fields.push((
        "campaign_digest",
        Json::str(format!("{:#018x}", manifest.digest())),
    ));
    if let Some(scans) = &scans {
        let clean = scans.iter().all(DamageReport::is_clean);
        fields.push((
            "damage",
            Json::object(vec![
                ("clean", Json::Bool(clean)),
                (
                    "chunks_scanned",
                    Json::U64(scans.iter().map(|r| r.chunks_scanned as u64).sum()),
                ),
                (
                    "traces_read",
                    Json::U64(scans.iter().map(|r| r.traces_read).sum()),
                ),
                (
                    "traces_total",
                    Json::U64(scans.iter().map(|r| r.traces_total).sum()),
                ),
                (
                    "traces_lost",
                    Json::U64(scans.iter().map(|r| r.traces_lost()).sum()),
                ),
                (
                    "damaged_shards",
                    Json::U64(scans.iter().filter(|r| !r.is_clean()).count() as u64),
                ),
            ]),
        ));
    }
    fields.push(("shards", Json::Array(shards)));
    let mut out = Json::object(fields).render_pretty();
    out.push('\n');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtd_experiment_reproduces_the_resistance_ordering() {
        // A deliberately small sweep (CI-sized); the full-grid ordering is
        // asserted by tests/leakage_assessment.rs.
        let report = mtd_experiment(7, &[50, 200, 800], 3, MtdAttack::Cpa);
        assert!(report.contains("seed = 7"));
        assert!(report.contains("MTD = "));
        assert!(report.contains("no disclosure observed"));
        // Deterministic in the seed.
        assert_eq!(
            report,
            mtd_experiment(7, &[50, 200, 800], 3, MtdAttack::Cpa)
        );
    }

    #[test]
    fn mtd_hw_discloses_before_the_sabl_styles() {
        let curves = mtd_curves(11, &[50, 200, 800], 3, MtdAttack::Cpa);
        let mtd_of = |model: LeakageModel| {
            curves
                .iter()
                .find(|(m, _)| *m == model)
                .map(|(_, c)| c.mtd.unwrap_or(usize::MAX))
                .unwrap()
        };
        let hw = mtd_of(LeakageModel::HammingWeight);
        assert!(hw < mtd_of(LeakageModel::FullyConnectedSabl));
        assert!(hw < mtd_of(LeakageModel::EnhancedSabl));
        assert!(hw <= mtd_of(LeakageModel::GenuineSabl));
    }
}

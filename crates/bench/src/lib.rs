//! # dpl-bench
//!
//! Experiment harness that regenerates every figure of Tiri & Verbauwhede,
//! *"Design Method for Constant Power Consumption of Differential Logic
//! Circuits"* (DATE 2005), plus the comparison experiments the paper refers
//! to in its text.  Each experiment is a function returning a plain-text
//! report; the `repro` binary prints them, `EXPERIMENTS.md` records them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assess;
pub mod compare;
pub mod experiments;
pub mod perf;
pub mod telemetry;

pub use assess::{
    charac_table_report, info_json, info_report, mtd_curves, mtd_curves_observed, mtd_experiment,
    mtd_experiment_for, mtd_experiment_for_observed, mtd_experiment_observed, tvla_report,
    tvla_report_observed, tvla_salvage_report, tvla_salvage_report_observed, CircuitChoice,
    MtdAttack, MTD_GRID, TVLA_FIXED_PLAINTEXT,
};
pub use compare::{
    append_history, history_line, Baseline, BaselineRow, BenchComparison, RowComparison,
};
pub use experiments::{
    cpa_experiment_seeded, cvsl_comparison, dpa_experiment, dpa_experiment_seeded,
    fig2_memory_effect, fig3_transient, fig4_capacitance, fig5_oai22, fig6_enhanced, library_sweep,
    run_all, DEFAULT_EXPERIMENT_SEED,
};
pub use perf::{git_revision, PerfConfig, PerfReport, PerfRow, BENCH_SCHEMA_VERSION};
pub use telemetry::{ReportFormat, TelemetrySession};

//! Command-line experiment runner: regenerates every figure of the paper,
//! records the performance trajectory, and drives the out-of-core trace
//! archive workflow.
//!
//! ```text
//! cargo run -p dpl-bench --release --bin repro                  # all experiments
//! cargo run -p dpl-bench --release --bin repro -- fig3          # a single one
//! cargo run -p dpl-bench --release --bin repro -- dpa 5000 --seed 7
//! cargo run -p dpl-bench --release --bin repro -- cpa 2000
//! cargo run -p dpl-bench --release --bin repro -- capture traces.dpltrc 100000 --seed 7
//! cargo run -p dpl-bench --release --bin repro -- capture tvla.dpltrc 20000 --tvla
//! cargo run -p dpl-bench --release --bin repro -- attack traces.dpltrc --dpa --verify
//! cargo run -p dpl-bench --release --bin repro -- info traces.dpltrc
//! cargo run -p dpl-bench --release --bin repro -- tvla tvla.dpltrc --order both
//! cargo run -p dpl-bench --release --bin repro -- mtd --seed 7 --attack cpa
//! cargo run -p dpl-bench --release --bin repro -- bench         # perf -> BENCH_dpa.json
//! ```

use std::env;
use std::process::ExitCode;

use dpl_bench::MtdAttack;
use dpl_cells::CapacitanceModel;
use dpl_crypto::{
    present_sbox, simulate_traces_into, simulate_tvla_traces_into, synthesize_sbox_with_key,
    EnergyCache, GateEnergyTable, LeakageModel, LeakageOptions,
};
use dpl_eval::TvlaOrder;
use dpl_power::{cpa_attack, dpa_attack, AttackResult};
use dpl_store::{
    cpa_attack_streaming, dpa_attack_streaming, ArchiveMeta, ArchiveReader, ArchiveWriter, ModelTag,
};

/// The fixed secret key nibble of every CLI campaign (printed by `capture`
/// and expected back by `attack`).
const CAMPAIGN_KEY: u8 = 0xA;

fn model_tag_of(model: LeakageModel) -> ModelTag {
    match model {
        LeakageModel::GenuineSabl => ModelTag::GenuineSabl,
        LeakageModel::FullyConnectedSabl => ModelTag::FullyConnectedSabl,
        LeakageModel::EnhancedSabl => ModelTag::EnhancedSabl,
        LeakageModel::HammingWeight => ModelTag::HammingWeight,
    }
}

fn leakage_model_of(tag: ModelTag) -> Option<LeakageModel> {
    match tag {
        ModelTag::GenuineSabl => Some(LeakageModel::GenuineSabl),
        ModelTag::FullyConnectedSabl => Some(LeakageModel::FullyConnectedSabl),
        ModelTag::EnhancedSabl => Some(LeakageModel::EnhancedSabl),
        ModelTag::HammingWeight => Some(LeakageModel::HammingWeight),
        ModelTag::Unspecified => None,
    }
}

fn parse_model(name: &str) -> Option<LeakageModel> {
    match name {
        "hw" | "hamming" => Some(LeakageModel::HammingWeight),
        "genuine" => Some(LeakageModel::GenuineSabl),
        "fc" | "fully-connected" => Some(LeakageModel::FullyConnectedSabl),
        "enhanced" => Some(LeakageModel::EnhancedSabl),
        _ => None,
    }
}

/// Parses `--seed <u64>` out of an argument list, returning the remaining
/// arguments and the seed (if present).
fn take_seed(args: &[String]) -> Result<(Vec<String>, Option<u64>), String> {
    let mut rest = Vec::new();
    let mut seed = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--seed" {
            let value = iter.next().ok_or("--seed needs a value")?;
            seed = Some(
                value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid seed `{value}`; expected a u64"))?,
            );
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, seed))
}

fn run_bench(args: &[String]) -> ExitCode {
    let mut config = dpl_bench::PerfConfig::full();
    let mut out_path = String::from("BENCH_dpa.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => config = dpl_bench::PerfConfig::quick(),
            "--out" => match iter.next() {
                Some(path) => out_path = path.clone(),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown bench option `{other}`; expected --quick or --out <path>");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = dpl_bench::perf::run(&config);
    print!("{}", report.render());
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

/// `repro capture <file> <n> [--seed s] [--model hw|genuine|fc|enhanced]
/// [--chunk k] [--tvla]`: simulate a campaign and stream it straight to a
/// chunked archive.  With `--tvla` the campaign is an interleaved
/// fixed-vs-random capture (even traces = fixed plaintext) tagged as such
/// in the archive header, ready for `repro tvla`.
fn run_capture(args: &[String]) -> ExitCode {
    let (args, seed) = match take_seed(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let mut positional = Vec::new();
    let mut model = LeakageModel::HammingWeight;
    let mut chunk_traces = 1024usize;
    let mut tvla = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--model" => match iter.next().and_then(|name| parse_model(name)) {
                Some(m) => model = m,
                None => {
                    eprintln!("--model needs one of: hw, genuine, fc, enhanced");
                    return ExitCode::FAILURE;
                }
            },
            "--chunk" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(k) if k > 0 => chunk_traces = k,
                _ => {
                    eprintln!("--chunk needs a positive trace count");
                    return ExitCode::FAILURE;
                }
            },
            "--tvla" => tvla = true,
            other if other.starts_with("--") => {
                eprintln!("unknown capture option `{other}`");
                return ExitCode::FAILURE;
            }
            other => positional.push(other.to_string()),
        }
    }
    let [path, count] = positional.as_slice() else {
        eprintln!(
            "usage: repro capture <file> <traces> [--seed s] [--model m] [--chunk k] [--tvla]"
        );
        return ExitCode::FAILURE;
    };
    let num_traces: usize = match count.parse() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("invalid trace count `{count}`; expected a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let seed = seed.unwrap_or(dpl_bench::DEFAULT_EXPERIMENT_SEED);

    let netlist = synthesize_sbox_with_key().expect("synthesis");
    let capacitance = CapacitanceModel::default();
    let table = GateEnergyTable::build(model, &capacitance).expect("energy table");
    let options = LeakageOptions {
        relative_noise: 0.02,
        seed,
    };
    let meta = if tvla {
        ArchiveMeta::scalar_tvla(chunk_traces, model_tag_of(model), seed)
    } else {
        ArchiveMeta::scalar(chunk_traces, model_tag_of(model), seed)
    };
    let mut writer = match ArchiveWriter::create(path, meta) {
        Ok(writer) => writer,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let capture = if tvla {
        simulate_tvla_traces_into(
            &netlist,
            &table,
            CAMPAIGN_KEY,
            dpl_bench::TVLA_FIXED_PLAINTEXT,
            num_traces,
            &options,
            &mut writer,
        )
    } else {
        simulate_traces_into(
            &netlist,
            &table,
            CAMPAIGN_KEY,
            num_traces,
            &options,
            &mut writer,
        )
    };
    if let Err(e) = capture {
        eprintln!("capture failed: {e}");
        return ExitCode::FAILURE;
    }
    match writer.finish() {
        Ok(total) => {
            let kind = if tvla {
                format!(
                    ", interleaved TVLA campaign (fixed plaintext {:#X})",
                    dpl_bench::TVLA_FIXED_PLAINTEXT
                )
            } else {
                String::new()
            };
            println!(
                "captured {total} traces to {path}: model = {}, seed = {seed}, \
                 chunk = {chunk_traces} traces, secret key nibble = {CAMPAIGN_KEY:#X}{kind}",
                model.label()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("finishing {path} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn attack_label(result: &AttackResult) -> String {
    let verdict = if result.best_guess == u64::from(CAMPAIGN_KEY) {
        "KEY RECOVERED"
    } else {
        "attack failed"
    };
    format!(
        "best guess = {:#X} ({verdict}), distinguishing ratio = {:.2}",
        result.best_guess,
        result.distinguishing_ratio()
    )
}

/// `repro attack <file> [--dpa|--cpa] [--verify] [--budget <traces>]`: run
/// an out-of-core attack over an archive; `--verify` also loads the archive
/// in memory and demands bit-identical scores, `--budget` caps the reader's
/// in-memory chunk budget (rejecting archives whose chunks exceed it).
fn run_attack(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut use_cpa = false;
    let mut verify = false;
    let mut budget = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--dpa" => use_cpa = false,
            "--cpa" => use_cpa = true,
            "--verify" => verify = true,
            "--budget" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(traces) if traces > 0 => budget = Some(traces),
                _ => {
                    eprintln!("--budget needs a positive trace count");
                    return ExitCode::FAILURE;
                }
            },
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("unknown attack option `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: repro attack <file> [--dpa|--cpa] [--verify] [--budget <traces>]");
        return ExitCode::FAILURE;
    };
    let mut reader = match ArchiveReader::open(&path) {
        Ok(reader) => reader,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if reader.campaign() == dpl_store::CampaignKind::TvlaInterleaved {
        // Symmetric with `repro tvla` refusing attack archives: half the
        // traces of a TVLA capture share one fixed plaintext, so a
        // key-recovery attack over it is statistically meaningless.
        eprintln!(
            "{path} records an interleaved TVLA campaign; key-recovery attacks over it are \
             meaningless — run `repro tvla {path}` instead"
        );
        return ExitCode::FAILURE;
    }
    if let Some(budget) = budget {
        reader = match reader.with_chunk_budget(budget) {
            Ok(reader) => reader,
            Err(e) => {
                eprintln!("cannot honour --budget {budget}: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    println!(
        "{path}: {} traces, {} samples/trace, {} chunks of {} traces, model = {}, seed = {}",
        reader.trace_count(),
        reader.samples_per_trace(),
        reader.chunk_count(),
        reader.meta().chunk_traces,
        reader.meta().model.label(),
        reader.meta().seed
    );
    if budget.is_some() {
        println!(
            "in-memory chunk budget: {} traces per resident chunk",
            reader.chunk_budget()
        );
    }

    let selection =
        |plaintext: u64, guess: u64| present_sbox((plaintext ^ guess) as u8).count_ones() >= 2;
    // A profiled CPA needs the device's energy model: rebuild it from the
    // archive's recorded leakage-model tag, falling back to the classic
    // S-box Hamming-weight hypothesis when the tag is unspecified.  The DPA
    // path never evaluates the model, so skip the synthesis there.
    let cache = if use_cpa {
        leakage_model_of(reader.meta().model).map(|model| {
            let netlist = synthesize_sbox_with_key().expect("synthesis");
            let table =
                GateEnergyTable::build(model, &CapacitanceModel::default()).expect("energy table");
            EnergyCache::new(&netlist, &table)
        })
    } else {
        None
    };
    let model = move |plaintext: u64, guess: u64| match &cache {
        Some(cache) => cache.energy(plaintext, guess as u8),
        None => present_sbox((plaintext ^ guess) as u8).count_ones() as f64,
    };

    let streamed = if use_cpa {
        cpa_attack_streaming(&mut reader, 16, &model)
    } else {
        dpa_attack_streaming(&mut reader, 16, selection)
    };
    let streamed = match streamed {
        Ok(result) => result,
        Err(e) => {
            eprintln!("out-of-core attack failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let kind = if use_cpa { "CPA" } else { "DPA" };
    println!("out-of-core {kind}: {}", attack_label(&streamed));

    if verify {
        let traces = match reader.read_all() {
            Ok(traces) => traces,
            Err(e) => {
                eprintln!("cannot load the archive in memory for --verify: {e}");
                return ExitCode::FAILURE;
            }
        };
        let in_memory = if use_cpa {
            cpa_attack(&traces, 16, &model)
        } else {
            dpa_attack(&traces, 16, selection)
        }
        .expect("in-memory attack");
        println!("in-memory   {kind}: {}", attack_label(&in_memory));
        if in_memory.scores != streamed.scores || in_memory.best_guess != streamed.best_guess {
            eprintln!("MISMATCH: out-of-core scores differ from the in-memory attack");
            return ExitCode::FAILURE;
        }
        println!("verify: out-of-core scores are bit-identical to the in-memory attack");
    }
    ExitCode::SUCCESS
}

/// `repro info <file>`: print an archive's header metadata without reading
/// any chunk data.
fn run_info(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("usage: repro info <file>");
        return ExitCode::FAILURE;
    };
    match dpl_bench::info_report(path) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// `repro tvla <file> [--order 1|2|both] [--workers n]`: streaming Welch
/// t-test over an interleaved fixed-vs-random archive.
fn run_tvla(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut orders: Vec<TvlaOrder> = vec![TvlaOrder::First, TvlaOrder::Second];
    let mut workers = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--order" => match iter.next().map(String::as_str) {
                Some("1") => orders = vec![TvlaOrder::First],
                Some("2") => orders = vec![TvlaOrder::Second],
                Some("both") => orders = vec![TvlaOrder::First, TvlaOrder::Second],
                _ => {
                    eprintln!("--order needs one of: 1, 2, both");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => workers = Some(n),
                _ => {
                    eprintln!("--workers needs a positive count");
                    return ExitCode::FAILURE;
                }
            },
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("unknown tvla option `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: repro tvla <file> [--order 1|2|both] [--workers n]");
        return ExitCode::FAILURE;
    };
    match dpl_bench::tvla_report(&path, &orders, workers) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// `repro mtd [--seed s] [--attack dpa|cpa] [--reps r]`: the
/// measurements-to-disclosure sweep across every leakage model.
fn run_mtd(args: &[String]) -> ExitCode {
    let (args, seed) = match take_seed(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let mut attack = MtdAttack::Cpa;
    let mut repetitions = 8usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--attack" => match iter.next().map(String::as_str) {
                Some("dpa") => attack = MtdAttack::Dpa,
                Some("cpa") => attack = MtdAttack::Cpa,
                _ => {
                    eprintln!("--attack needs one of: dpa, cpa");
                    return ExitCode::FAILURE;
                }
            },
            "--reps" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(r) if r > 0 => repetitions = r,
                _ => {
                    eprintln!("--reps needs a positive count");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown mtd option `{other}`; expected --seed, --attack or --reps");
                return ExitCode::FAILURE;
            }
        }
    }
    let seed = seed.unwrap_or(dpl_bench::DEFAULT_EXPERIMENT_SEED);
    print!(
        "{}",
        dpl_bench::mtd_experiment(seed, dpl_bench::MTD_GRID, repetitions, attack)
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    match which {
        "bench" => return run_bench(&args[1..]),
        "capture" => return run_capture(&args[1..]),
        "attack" => return run_attack(&args[1..]),
        "info" => return run_info(&args[1..]),
        "tvla" => return run_tvla(&args[1..]),
        "mtd" => return run_mtd(&args[1..]),
        _ => {}
    }
    let (args, seed) = match take_seed(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if seed.is_some() && !matches!(which, "dpa" | "cpa") {
        // Refuse rather than silently running the hard-coded default seed.
        eprintln!("--seed is only supported by the dpa, cpa, capture and mtd subcommands");
        return ExitCode::FAILURE;
    }
    if args.iter().any(|arg| arg == "--budget") {
        // Like --seed: refuse flags on subcommands that would silently
        // ignore them.
        eprintln!("--budget is only supported by the attack subcommand");
        return ExitCode::FAILURE;
    }
    let seed = seed.unwrap_or(dpl_bench::DEFAULT_EXPERIMENT_SEED);
    let dpa_traces: usize = match args.get(1) {
        None => 2000,
        Some(s) => match s.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("invalid trace count `{s}`; expected a positive integer");
                return ExitCode::FAILURE;
            }
        },
    };

    let report = match which {
        "all" => dpl_bench::run_all(dpa_traces),
        "fig2" => dpl_bench::fig2_memory_effect(),
        "fig3" => dpl_bench::fig3_transient(),
        "fig4" => dpl_bench::fig4_capacitance(),
        "fig5" => dpl_bench::fig5_oai22(),
        "fig6" => dpl_bench::fig6_enhanced(),
        "cvsl" => dpl_bench::cvsl_comparison(),
        "dpa" => dpl_bench::dpa_experiment_seeded(dpa_traces, seed),
        "cpa" => dpl_bench::cpa_experiment_seeded(dpa_traces, seed),
        "library" => dpl_bench::library_sweep(),
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected one of: all, fig2, fig3, fig4, fig5, \
                 fig6, cvsl, dpa, cpa, library, bench, capture, attack, info, tvla, mtd"
            );
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");
    ExitCode::SUCCESS
}

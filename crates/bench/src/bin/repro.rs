//! Command-line experiment runner: regenerates every figure of the paper
//! and records the performance trajectory.
//!
//! ```text
//! cargo run -p dpl-bench --release --bin repro            # all experiments
//! cargo run -p dpl-bench --release --bin repro -- fig3    # a single one
//! cargo run -p dpl-bench --release --bin repro -- dpa 5000
//! cargo run -p dpl-bench --release --bin repro -- bench   # perf -> BENCH_dpa.json
//! cargo run -p dpl-bench --release --bin repro -- bench --quick --out out.json
//! ```

use std::env;
use std::process::ExitCode;

fn run_bench(args: &[String]) -> ExitCode {
    let mut config = dpl_bench::PerfConfig::full();
    let mut out_path = String::from("BENCH_dpa.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => config = dpl_bench::PerfConfig::quick(),
            "--out" => match iter.next() {
                Some(path) => out_path = path.clone(),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown bench option `{other}`; expected --quick or --out <path>");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = dpl_bench::perf::run(&config);
    print!("{}", report.render());
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    if which == "bench" {
        return run_bench(&args[1..]);
    }
    let dpa_traces: usize = match args.get(1) {
        None => 2000,
        Some(s) => match s.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("invalid trace count `{s}`; expected a positive integer");
                return ExitCode::FAILURE;
            }
        },
    };

    let report = match which {
        "all" => dpl_bench::run_all(dpa_traces),
        "fig2" => dpl_bench::fig2_memory_effect(),
        "fig3" => dpl_bench::fig3_transient(),
        "fig4" => dpl_bench::fig4_capacitance(),
        "fig5" => dpl_bench::fig5_oai22(),
        "fig6" => dpl_bench::fig6_enhanced(),
        "cvsl" => dpl_bench::cvsl_comparison(),
        "dpa" => dpl_bench::dpa_experiment(dpa_traces),
        "library" => dpl_bench::library_sweep(),
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected one of: all, fig2, fig3, fig4, fig5, \
                 fig6, cvsl, dpa, library, bench"
            );
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");
    ExitCode::SUCCESS
}

//! Command-line experiment runner: regenerates every figure of the paper,
//! records the performance trajectory, and drives the out-of-core trace
//! archive workflow — for built-in *and* transient-characterized energy
//! models, over the S-box datapath or any library-cell circuit.
//!
//! ```text
//! cargo run -p dpl-bench --release --bin repro                  # all experiments
//! cargo run -p dpl-bench --release --bin repro -- fig3          # a single one
//! cargo run -p dpl-bench --release --bin repro -- dpa 5000 --seed 7
//! cargo run -p dpl-bench --release --bin repro -- cpa 2000
//! cargo run -p dpl-bench --release --bin repro -- charac-table oai22 --model fc-charac
//! cargo run -p dpl-bench --release --bin repro -- capture traces.dpltrc 100000 --seed 7
//! cargo run -p dpl-bench --release --bin repro -- capture m.dpltrc 5000 --model genuine-charac --circuit maj3
//! cargo run -p dpl-bench --release --bin repro -- capture tvla.dpltrc 20000 --tvla
//! cargo run -p dpl-bench --release --bin repro -- capture traces.dpltrc 100000 --seed 7 --resume
//! cargo run -p dpl-bench --release --bin repro -- capture campaign.json 100000 --shards 4
//! cargo run -p dpl-bench --release --bin repro -- capture compact.dpltrc 50000 --encoding i16 --compress
//! cargo run -p dpl-bench --release --bin repro -- attack traces.dpltrc --dpa --verify
//! cargo run -p dpl-bench --release --bin repro -- attack campaign.json --cpa --verify
//! cargo run -p dpl-bench --release --bin repro -- attack m.dpltrc --cpa --circuit maj3
//! cargo run -p dpl-bench --release --bin repro -- attack damaged.dpltrc --dpa --salvage
//! cargo run -p dpl-bench --release --bin repro -- attack traces.dpltrc --dpa --metrics m.jsonl --report text
//! cargo run -p dpl-bench --release --bin repro -- attack traces.dpltrc --dpa --trace t.json --progress
//! cargo run -p dpl-bench --release --bin repro -- fsck traces.dpltrc --repair
//! cargo run -p dpl-bench --release --bin repro -- info traces.dpltrc
//! cargo run -p dpl-bench --release --bin repro -- info traces.dpltrc --json --fsck
//! cargo run -p dpl-bench --release --bin repro -- tvla tvla.dpltrc --order both
//! cargo run -p dpl-bench --release --bin repro -- mtd --seed 7 --attack cpa
//! cargo run -p dpl-bench --release --bin repro -- mtd --model fc-charac --circuit oai22
//! cargo run -p dpl-bench --release --bin repro -- verify all    # prove + certify + replay
//! cargo run -p dpl-bench --release --bin repro -- verify sbox --model fc
//! cargo run -p dpl-bench --release --bin repro -- bench         # perf -> BENCH_dpa.json
//! cargo run -p dpl-bench --release --bin repro -- bench --quick --compare BENCH_dpa.json
//! cargo run -p dpl-bench --release --bin repro -- bench --history BENCH_history.jsonl
//! ```

use std::collections::BTreeSet;
use std::env;
use std::fs::File;
use std::path::Path;
use std::process::ExitCode;

use dpl_bench::{CircuitChoice, MtdAttack, TelemetrySession};
use dpl_cells::CapacitanceModel;
use dpl_core::GateKind;
use dpl_crypto::{
    simulate_trace_range_into, simulate_traces_into, simulate_traces_into_observed,
    simulate_tvla_trace_range_into, simulate_tvla_traces_into, simulate_tvla_traces_into_observed,
    EnergyCache, EnergyModel, GateEnergyTable, GateNetlist, LeakageModel, LeakageOptions,
};
use dpl_eval::TvlaOrder;
use dpl_obs::Obs;
use dpl_power::{cpa_attack, dpa_attack, AttackResult, TraceSet, TraceSink};
use dpl_store::{
    cpa_attack_salvage, cpa_attack_streaming, dpa_attack_salvage, dpa_attack_streaming,
    is_manifest_file, repair_archive, ArchiveMeta, ArchiveReader, ArchiveWriter, CampaignManifest,
    ChunkSource, Compression, FaultPlan, FaultStream, ModelTag, Quantization, ReadPolicy, ReadSite,
    RetryPolicy, SampleEncoding, ShardMeta, ShardedReader, StoreError, SyncWrite,
};

/// The fixed secret key nibble of every CLI campaign (printed by `capture`
/// and expected back by `attack`).
const CAMPAIGN_KEY: u8 = 0xA;

/// Every flag whose effect is scoped to particular subcommands, with the
/// subcommands that accept it.  [`check_flag_scopes`] rejects such a flag
/// on any other subcommand with one consistent message — the single place
/// this rule lives, instead of per-flag ad-hoc checks.
const FLAG_SCOPES: &[(&str, &[&str])] = &[
    ("--seed", &["dpa", "cpa", "capture", "mtd"]),
    ("--budget", &["attack"]),
    (
        "--model",
        &["capture", "attack", "mtd", "charac-table", "verify"],
    ),
    ("--circuit", &["capture", "attack", "mtd"]),
    ("--chunk", &["capture"]),
    ("--tvla", &["capture"]),
    ("--force", &["capture"]),
    ("--resume", &["capture"]),
    ("--fault-at", &["capture"]),
    ("--shards", &["capture"]),
    ("--encoding", &["capture"]),
    ("--compress", &["capture"]),
    ("--dpa", &["attack"]),
    ("--cpa", &["attack"]),
    ("--verify", &["attack"]),
    ("--salvage", &["attack", "tvla"]),
    ("--repair", &["fsck"]),
    ("--order", &["tvla"]),
    ("--workers", &["tvla"]),
    ("--attack", &["mtd"]),
    ("--reps", &["mtd"]),
    ("--quick", &["bench"]),
    ("--out", &["bench"]),
    ("--history", &["bench"]),
    ("--compare", &["bench"]),
    ("--max-regression", &["bench"]),
    ("--tolerance", &["verify"]),
    ("--metrics", &["capture", "attack", "tvla", "mtd", "verify"]),
    ("--report", &["capture", "attack", "tvla", "mtd", "verify"]),
    ("--trace", &["capture", "attack", "tvla", "mtd", "verify"]),
    (
        "--progress",
        &["capture", "attack", "tvla", "mtd", "verify"],
    ),
    ("--json", &["info"]),
    ("--fsck", &["info"]),
];

/// Rejects any scoped flag that does not apply to `subcommand`, naming the
/// offending subcommand and where the flag is actually supported.
fn check_flag_scopes(subcommand: &str, args: &[String]) -> Result<(), String> {
    for &(flag, scopes) in FLAG_SCOPES {
        if !scopes.contains(&subcommand) && args.iter().any(|a| a == flag) {
            return Err(format!(
                "`{flag}` is not supported by the `{subcommand}` subcommand; it only applies \
                 to: {}",
                scopes.join(", ")
            ));
        }
    }
    Ok(())
}

/// The consistent "unknown flag" message of every subcommand parser.
fn unknown_flag(subcommand: &str, flag: &str, usage: &str) -> String {
    format!("unknown option `{flag}` for the `{subcommand}` subcommand; usage: {usage}")
}

/// Exports a finished subcommand's telemetry — JSON-lines to the
/// `--metrics` file, the Chrome `trace_event` document to the `--trace`
/// file, the rendered `--report` to stdout — and returns the command's
/// final exit code (an export failure fails the command).
fn finish_telemetry(telemetry: Option<TelemetrySession>, command: &str) -> ExitCode {
    if let Some(session) = telemetry {
        match session.finish(command) {
            Ok(report) => print!("{report}"),
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Flushes a subcommand's telemetry on **every** exit path and folds the
/// command body's outcome into the final exit code.  A failed campaign
/// still exports the partial telemetry recorded up to the failure (often
/// exactly the evidence needed to diagnose it), but its failure always
/// wins over the export's success.
fn conclude(
    outcome: Result<(), ()>,
    telemetry: Option<TelemetrySession>,
    command: &str,
) -> ExitCode {
    let flushed = finish_telemetry(telemetry, command);
    match outcome {
        Ok(()) => flushed,
        Err(()) => ExitCode::FAILURE,
    }
}

fn model_tag_of(model: EnergyModel) -> ModelTag {
    let base = match model.style {
        LeakageModel::GenuineSabl => ModelTag::GenuineSabl,
        LeakageModel::FullyConnectedSabl => ModelTag::FullyConnectedSabl,
        LeakageModel::EnhancedSabl => ModelTag::EnhancedSabl,
        LeakageModel::HammingWeight => ModelTag::HammingWeight,
    };
    if model.is_characterized() {
        base.characterized().expect("every style has a charac tag")
    } else {
        base
    }
}

fn energy_model_of(tag: ModelTag) -> Option<EnergyModel> {
    let style = match tag.base_style() {
        ModelTag::GenuineSabl => LeakageModel::GenuineSabl,
        ModelTag::FullyConnectedSabl => LeakageModel::FullyConnectedSabl,
        ModelTag::EnhancedSabl => LeakageModel::EnhancedSabl,
        ModelTag::HammingWeight => LeakageModel::HammingWeight,
        _ => return None,
    };
    Some(if tag.is_characterized() {
        EnergyModel::characterized(style)
    } else {
        EnergyModel::builtin(style)
    })
}

/// The digest a capture records in the archive header for a non-default
/// hypothesis: the energy table's digest combined with the attack
/// circuit's name, so `attack` can verify it rebuilt **both** the exact
/// energy model and the exact circuit — for built-in and characterized
/// models alike.
fn hypothesis_digest(table: &GateEnergyTable, circuit: CircuitChoice) -> u64 {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&table.digest().to_le_bytes());
    bytes.extend_from_slice(circuit.name().as_bytes());
    dpl_store::format::fnv1a64(&bytes)
}

/// Parses `--seed <u64>` out of an argument list, returning the remaining
/// arguments and the seed (if present).
fn take_seed(args: &[String]) -> Result<(Vec<String>, Option<u64>), String> {
    let mut rest = Vec::new();
    let mut seed = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--seed" {
            let value = iter.next().ok_or("--seed needs a value")?;
            seed = Some(
                value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid seed `{value}`; expected a u64"))?,
            );
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, seed))
}

/// Parses the value of a `--model` flag.
fn parse_model_arg(value: Option<&String>) -> Result<EnergyModel, String> {
    value
        .and_then(|name| EnergyModel::parse(name))
        .ok_or_else(|| {
            "--model needs one of: hw, genuine, fc, enhanced — optionally with a `-charac` \
             suffix for the transient-characterized source (e.g. genuine-charac)"
                .to_string()
        })
}

/// Parses the value of a `--circuit` flag.
fn parse_circuit_arg(value: Option<&String>) -> Result<CircuitChoice, String> {
    value
        .and_then(|name| CircuitChoice::parse(name))
        .ok_or_else(|| "--circuit needs `sbox` or a library gate name (e.g. oai22, maj3)".into())
}

/// `repro bench [--quick] [--out <path>] [--history <file>]
/// [--compare <baseline.json>] [--max-regression <pct>]`: run the perf
/// suite, write the stamped report, optionally append a compact record to
/// a bench-history JSON-lines ledger, and optionally gate the run against
/// a committed baseline — exiting non-zero when any row's throughput
/// regressed past the threshold.
fn run_bench(args: &[String]) -> ExitCode {
    const USAGE: &str = "repro bench [--quick] [--out <path>] [--history <file>] \
                         [--compare <baseline.json>] [--max-regression <pct>]";
    let mut config = dpl_bench::PerfConfig::full();
    let mut out_path: Option<String> = None;
    let mut history_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut max_regression_pct = 25.0f64;
    let mut max_regression_given = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => config = dpl_bench::PerfConfig::quick(),
            "--out" => match iter.next() {
                Some(path) => out_path = Some(path.clone()),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--history" => match iter.next() {
                Some(path) => history_path = Some(path.clone()),
                None => {
                    eprintln!("--history needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--compare" => match iter.next() {
                Some(path) => compare_path = Some(path.clone()),
                None => {
                    eprintln!("--compare needs a baseline JSON path");
                    return ExitCode::FAILURE;
                }
            },
            "--max-regression" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 => {
                    max_regression_pct = pct;
                    max_regression_given = true;
                }
                _ => {
                    eprintln!("--max-regression needs a positive percentage (e.g. 25)");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("{}", unknown_flag("bench", other, USAGE));
                return ExitCode::FAILURE;
            }
        }
    }
    if max_regression_given && compare_path.is_none() {
        eprintln!("--max-regression only applies together with --compare");
        return ExitCode::FAILURE;
    }
    let report = dpl_bench::perf::run(&config);
    print!("{}", report.render());
    // A comparison run leaves the committed baseline alone unless --out
    // says otherwise — the common CI shape is `--out target/... --compare
    // BENCH_dpa.json`, which must not clobber the file it gates against.
    let out_path = out_path.or_else(|| compare_path.is_none().then(|| "BENCH_dpa.json".into()));
    if let Some(out_path) = &out_path {
        if let Err(e) = std::fs::write(out_path, report.to_json()) {
            eprintln!("failed to write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {out_path}");
    }
    if let Some(history_path) = &history_path {
        if let Err(message) = dpl_bench::append_history(history_path, &report) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
        println!("appended bench record to {history_path}");
    }
    if let Some(baseline_path) = &compare_path {
        let baseline = match dpl_bench::Baseline::load(baseline_path) {
            Ok(baseline) => baseline,
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        };
        let comparison =
            dpl_bench::BenchComparison::compare(&report, &baseline, max_regression_pct / 100.0);
        print!("{}", comparison.render());
        if !comparison.passed() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Forwards a campaign's trace stream to an archive writer, discarding the
/// first `remaining` records — how a resumed capture replays the
/// deterministic simulation from trace 0 but only writes the traces the
/// interrupted run never flushed, so the finished file is byte-identical to
/// an uninterrupted capture.
struct SkipSink<'a, W: SyncWrite> {
    writer: &'a mut ArchiveWriter<W>,
    remaining: u64,
}

impl<W: SyncWrite> TraceSink for SkipSink<'_, W> {
    type Error = StoreError;

    fn record(&mut self, input: u64, samples: &[f64]) -> Result<(), StoreError> {
        if self.remaining > 0 {
            self.remaining -= 1;
            Ok(())
        } else {
            self.writer.append(input, samples)
        }
    }
}

/// Everything a capture campaign needs besides the destination stream.
struct CaptureJob {
    netlist: GateNetlist,
    table: GateEnergyTable,
    options: LeakageOptions,
    tvla: bool,
    num_traces: usize,
}

impl CaptureJob {
    /// Simulates the campaign into the writer (skipping whatever the writer
    /// already holds from a resumed prefix) and finishes the archive.  With
    /// `obs`, the writer's chunk/fsync counters and the simulator's span and
    /// throughput gauges are recorded — the trace stream itself is
    /// byte-identical either way.
    fn run<W: SyncWrite>(
        &self,
        writer: &mut ArchiveWriter<W>,
        obs: Option<&Obs>,
    ) -> Result<u64, String> {
        if let Some(obs) = obs {
            writer.set_obs(obs);
        }
        let skip = writer.traces_written();
        let mut sink = SkipSink {
            writer: &mut *writer,
            remaining: skip,
        };
        let capture = match (self.tvla, obs) {
            (true, Some(obs)) => simulate_tvla_traces_into_observed(
                &self.netlist,
                &self.table,
                CAMPAIGN_KEY,
                dpl_bench::TVLA_FIXED_PLAINTEXT,
                self.num_traces,
                &self.options,
                &mut sink,
                obs,
            ),
            (true, None) => simulate_tvla_traces_into(
                &self.netlist,
                &self.table,
                CAMPAIGN_KEY,
                dpl_bench::TVLA_FIXED_PLAINTEXT,
                self.num_traces,
                &self.options,
                &mut sink,
            ),
            (false, Some(obs)) => simulate_traces_into_observed(
                &self.netlist,
                &self.table,
                CAMPAIGN_KEY,
                self.num_traces,
                &self.options,
                &mut sink,
                obs,
            ),
            (false, None) => simulate_traces_into(
                &self.netlist,
                &self.table,
                CAMPAIGN_KEY,
                self.num_traces,
                &self.options,
                &mut sink,
            ),
        };
        capture.map_err(|e| format!("capture failed: {e}"))?;
        writer
            .finish()
            .map_err(|e| format!("finishing failed: {e}"))
    }
}

/// `repro capture <file> <n> [--seed s] [--model <name>] [--circuit <name>]
/// [--chunk k] [--tvla] [--force] [--resume] [--fault-at k] [--shards n]
/// [--encoding f64|f32|i16] [--compress]`: simulate a campaign and stream
/// it straight to a chunked archive.  `--model` accepts
/// characterisation-derived models (e.g. `genuine-charac`), `--circuit` any
/// library-cell datapath; with `--tvla` the campaign is an interleaved
/// fixed-vs-random capture (even traces = fixed plaintext) tagged as such
/// in the archive header, ready for `repro tvla`.  An existing file is
/// never overwritten unless `--force` is passed; `--resume` continues an
/// interrupted capture from its recovered valid prefix instead, and
/// `--fault-at k` injects a deterministic I/O failure at operation `k`
/// (the crash-recovery smoke test's crash lever).
///
/// `--shards n` captures a **sharded campaign**: `<file>` becomes a JSON
/// campaign manifest and the traces land in `n` shard archives captured by
/// one worker each, drawn from the block-seeded parallel trace stream so
/// the concatenated shards are bit-identical for **any** shard count.
/// `--encoding`/`--compress` select the version-3 compact sample encodings
/// (the fixed-point `i16` scale is derived from a deterministic probe of
/// the campaign's first traces and recorded in every header).
fn run_capture(args: &[String]) -> ExitCode {
    let (args, seed) = match take_seed(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let (args, telemetry) = match TelemetrySession::from_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = capture_command(&args, seed, telemetry.as_ref());
    conclude(outcome, telemetry, "repro capture")
}

/// The body of `repro capture`, separated from [`run_capture`] so the
/// telemetry session flushes even when the capture fails mid-campaign.
/// Every error is printed here; `Err(())` only signals the exit code.
fn capture_command(
    args: &[String],
    seed: Option<u64>,
    telemetry: Option<&TelemetrySession>,
) -> Result<(), ()> {
    const USAGE: &str = "repro capture <file> <traces> [--seed s] [--model m] [--circuit c] \
                         [--chunk k] [--tvla] [--force] [--resume] [--fault-at k] [--shards n] \
                         [--encoding f64|f32|i16] [--compress] \
                         [--metrics f] [--report json|text] [--trace f] [--progress]";
    let mut positional = Vec::new();
    let mut model = EnergyModel::builtin(LeakageModel::HammingWeight);
    let mut circuit = CircuitChoice::Sbox;
    let mut chunk_traces = 1024usize;
    let mut tvla = false;
    let mut force = false;
    let mut resume = false;
    let mut fault_at = None;
    let mut shards: Option<usize> = None;
    let mut encoding_arg = "f64";
    let mut compress = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--model" => match parse_model_arg(iter.next()) {
                Ok(m) => model = m,
                Err(message) => {
                    eprintln!("{message}");
                    return Err(());
                }
            },
            "--circuit" => match parse_circuit_arg(iter.next()) {
                Ok(c) => circuit = c,
                Err(message) => {
                    eprintln!("{message}");
                    return Err(());
                }
            },
            "--chunk" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(k) if k > 0 => chunk_traces = k,
                _ => {
                    eprintln!("--chunk needs a positive trace count");
                    return Err(());
                }
            },
            "--tvla" => tvla = true,
            "--force" => force = true,
            "--resume" => resume = true,
            "--fault-at" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(op) => fault_at = Some(op),
                None => {
                    eprintln!("--fault-at needs an operation index (a non-negative integer)");
                    return Err(());
                }
            },
            "--shards" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => shards = Some(n),
                _ => {
                    eprintln!("--shards needs a positive shard count");
                    return Err(());
                }
            },
            "--encoding" => match iter.next().map(String::as_str) {
                Some(name @ ("f64" | "f32" | "i16")) => encoding_arg = name,
                _ => {
                    eprintln!("--encoding needs one of: f64, f32, i16");
                    return Err(());
                }
            },
            "--compress" => compress = true,
            other if other.starts_with("--") => {
                eprintln!("{}", unknown_flag("capture", other, USAGE));
                return Err(());
            }
            other => positional.push(other.to_string()),
        }
    }
    let [path, count] = positional.as_slice() else {
        eprintln!("usage: {USAGE}");
        return Err(());
    };
    let num_traces: usize = match count.parse() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("invalid trace count `{count}`; expected a positive integer");
            return Err(());
        }
    };
    if resume && force {
        eprintln!("--resume and --force contradict each other: resume keeps the existing data");
        return Err(());
    }
    if resume && fault_at.is_some() {
        eprintln!("--fault-at applies to fresh captures only");
        return Err(());
    }
    if shards.is_some() && resume {
        eprintln!("--shards captures a fresh campaign; --resume applies to single archives");
        return Err(());
    }
    if shards.is_some() && fault_at.is_some() {
        eprintln!("--fault-at applies to single-archive captures only");
        return Err(());
    }
    let seed = seed.unwrap_or(dpl_bench::DEFAULT_EXPERIMENT_SEED);
    let obs = telemetry.map(|t| t.obs());

    let netlist = circuit.netlist();
    let capacitance = CapacitanceModel::default();
    let table = GateEnergyTable::for_circuit(model, &capacitance, &netlist).expect("energy table");
    let options = LeakageOptions {
        relative_noise: 0.02,
        seed,
    };
    let mut meta = if tvla {
        ArchiveMeta::scalar_tvla(chunk_traces, model_tag_of(model), seed)
    } else {
        ArchiveMeta::scalar(chunk_traces, model_tag_of(model), seed)
    };
    if model.is_characterized() || circuit != CircuitChoice::Sbox {
        // Any non-default hypothesis (characterized table, or a circuit
        // other than the S-box datapath) records its digest so `attack`
        // can verify it rebuilt the exact same energy model *and* circuit
        // (promotes the header to format version 2).
        meta = meta.with_table_digest(hypothesis_digest(&table, circuit));
    }
    let job = CaptureJob {
        netlist,
        table,
        options,
        tvla,
        num_traces,
    };
    let encoding = match encoding_arg {
        "f32" => SampleEncoding::F32,
        "i16" => match probe_quantization(&job, shards.is_some()) {
            Ok(q) => SampleEncoding::I16(q),
            Err(message) => {
                eprintln!("{message}");
                return Err(());
            }
        },
        _ => SampleEncoding::F64,
    };
    meta = meta.with_encoding(encoding).with_compression(if compress {
        Compression::Shuffle
    } else {
        Compression::None
    });

    if let Some(shards) = shards {
        return capture_sharded(path, shards, meta, &job, circuit, force, telemetry);
    }

    let finished = if resume {
        let (mut writer, recovery) = match ArchiveWriter::resume(path, meta) {
            Ok(resumed) => resumed,
            Err(e) => {
                eprintln!("cannot resume {path}: {e}");
                return Err(());
            }
        };
        println!(
            "resumed {path}: {} full chunk(s) ({} trace(s)) kept, {} trace(s) re-buffered \
             from an interrupted finish, {} byte(s) of torn data dropped",
            recovery.full_chunks,
            recovery.full_traces,
            recovery.buffered_traces,
            recovery.dropped_bytes
        );
        if let Some(obs) = obs {
            recovery.observe(obs);
        }
        let already = writer.traces_written();
        if already > num_traces as u64 {
            eprintln!(
                "{path} already holds {already} trace(s) — more than the {num_traces} requested"
            );
            return Err(());
        }
        if let Some(session) = telemetry {
            // A resumed capture only flushes the traces the interrupted
            // run never wrote; the progress plane counts exactly those.
            session.start_progress(Some(num_traces as u64 - already), "traces");
        }
        job.run(&mut writer, obs)
    } else {
        if Path::new(path).exists() && !force {
            eprintln!(
                "refusing to overwrite {path}: it already exists; pass --force to truncate \
                 it, or --resume to continue an interrupted capture"
            );
            return Err(());
        }
        if let Some(session) = telemetry {
            session.start_progress(Some(num_traces as u64), "traces");
        }
        match fault_at {
            Some(op) => {
                let file = match File::create(path) {
                    Ok(file) => file,
                    Err(e) => {
                        eprintln!("cannot create {path}: {e}");
                        return Err(());
                    }
                };
                let stream =
                    FaultStream::new(file, FaultPlan::error_at(op, std::io::ErrorKind::Other));
                match ArchiveWriter::new(stream, meta) {
                    Ok(mut writer) => job.run(&mut writer, obs),
                    Err(e) => Err(format!("cannot create {path}: {e}")),
                }
            }
            None => match ArchiveWriter::create(path, meta) {
                Ok(mut writer) => job.run(&mut writer, obs),
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return Err(());
                }
            },
        }
    };
    match finished {
        Ok(total) => {
            let kind = if tvla {
                format!(
                    ", interleaved TVLA campaign (fixed plaintext {:#X})",
                    dpl_bench::TVLA_FIXED_PLAINTEXT
                )
            } else {
                String::new()
            };
            println!(
                "captured {total} traces to {path}: model = {}, seed = {seed}, \
                 chunk = {chunk_traces} traces, secret key nibble = {CAMPAIGN_KEY:#X}{kind}",
                model.label()
            );
            if circuit != CircuitChoice::Sbox {
                println!("circuit: {} ({})", circuit.name(), circuit.label());
            }
            print_encoding(&meta);
            if meta.table_digest != 0 {
                println!(
                    "hypothesis digest (energy table + circuit): {:#018X} (recorded in the \
                     archive header)",
                    meta.table_digest
                );
            }
            Ok(())
        }
        Err(message) => {
            eprintln!("{message}");
            Err(())
        }
    }
}

/// Prints the compact-encoding facts of a version-3 capture (silent for the
/// default lossless layout, whose reports are unchanged).
fn print_encoding(meta: &ArchiveMeta) {
    if meta.format_version() < 3 {
        return;
    }
    println!(
        "encoding: {} samples, compression: {}",
        meta.encoding.label(),
        meta.compression.label()
    );
    if let Some(q) = meta.encoding.quantization() {
        println!(
            "quantization scale: {:.6e} (max abs error {:.3e}, recorded in every header)",
            q.scale,
            q.max_error()
        );
    }
}

/// Derives the fixed-point quantization contract of an `--encoding i16`
/// capture from a deterministic probe of the campaign's first traces
/// (up to 1024): the scale leaves 2x headroom over the largest probed
/// magnitude before saturation.  The probe replays the exact stream the
/// capture will write — sequential for a single archive, block-seeded for
/// a sharded campaign — so re-deriving it (e.g. for `--resume`) is
/// reproducible.
fn probe_quantization(job: &CaptureJob, sharded: bool) -> Result<Quantization, String> {
    let probe = job.num_traces.min(1024);
    let mut set = TraceSet::new();
    let outcome = if sharded {
        if job.tvla {
            simulate_tvla_trace_range_into(
                &job.netlist,
                &job.table,
                CAMPAIGN_KEY,
                dpl_bench::TVLA_FIXED_PLAINTEXT,
                0,
                probe as u64,
                &job.options,
                &mut set,
            )
        } else {
            simulate_trace_range_into(
                &job.netlist,
                &job.table,
                CAMPAIGN_KEY,
                0,
                probe as u64,
                &job.options,
                &mut set,
            )
        }
    } else if job.tvla {
        simulate_tvla_traces_into(
            &job.netlist,
            &job.table,
            CAMPAIGN_KEY,
            dpl_bench::TVLA_FIXED_PLAINTEXT,
            probe,
            &job.options,
            &mut set,
        )
    } else {
        simulate_traces_into(
            &job.netlist,
            &job.table,
            CAMPAIGN_KEY,
            probe,
            &job.options,
            &mut set,
        )
    };
    outcome.map_err(|e| format!("quantization probe failed: {e}"))?;
    let mut max_abs = 0.0f64;
    for t in 0..set.len() {
        for v in set.trace_samples(t) {
            max_abs = max_abs.max(v.abs());
        }
    }
    if !max_abs.is_finite() || max_abs <= 0.0 {
        return Err(
            "cannot derive an i16 quantization scale: the probe traces hold no non-zero \
             finite sample"
                .into(),
        );
    }
    Quantization::new(max_abs * 2.0 / f64::from(i16::MAX))
        .map_err(|e| format!("quantization probe failed: {e}"))
}

/// Forwards a shard's trace stream to its archive writer while tracking
/// the shard's distinct inputs (bounded just past the class-aggregation
/// limit), so the campaign-wide union can be recorded in the manifest
/// exactly as a single archive of the whole campaign would record it.
struct DistinctSink<'a, W: SyncWrite> {
    writer: &'a mut ArchiveWriter<W>,
    inputs: BTreeSet<u64>,
}

impl<W: SyncWrite> TraceSink for DistinctSink<'_, W> {
    type Error = StoreError;

    fn record(&mut self, input: u64, samples: &[f64]) -> Result<(), StoreError> {
        if self.inputs.len() <= dpl_power::MAX_INPUT_CLASSES {
            self.inputs.insert(input);
        }
        self.writer.append(input, samples)
    }
}

/// Captures one shard of a sharded campaign: global traces
/// `start..start + count` of the block-seeded stream, written to `path`.
/// Returns the traces written and the shard's (bounded) distinct-input set.
fn capture_one_shard(
    path: &Path,
    meta: ArchiveMeta,
    job: &CaptureJob,
    start: u64,
    count: u64,
    obs: Option<&Obs>,
) -> Result<(u64, BTreeSet<u64>), String> {
    let display = path.display();
    let mut writer =
        ArchiveWriter::create(path, meta).map_err(|e| format!("cannot create {display}: {e}"))?;
    if let Some(obs) = obs {
        writer.set_obs(obs);
    }
    let mut sink = DistinctSink {
        writer: &mut writer,
        inputs: BTreeSet::new(),
    };
    let outcome = if job.tvla {
        simulate_tvla_trace_range_into(
            &job.netlist,
            &job.table,
            CAMPAIGN_KEY,
            dpl_bench::TVLA_FIXED_PLAINTEXT,
            start,
            count,
            &job.options,
            &mut sink,
        )
    } else {
        simulate_trace_range_into(
            &job.netlist,
            &job.table,
            CAMPAIGN_KEY,
            start,
            count,
            &job.options,
            &mut sink,
        )
    };
    let inputs = std::mem::take(&mut sink.inputs);
    outcome.map_err(|e| format!("capture into {display} failed: {e}"))?;
    let written = writer
        .finish()
        .map_err(|e| format!("finishing {display} failed: {e}"))?;
    Ok((written, inputs))
}

/// The `--shards n` body of `repro capture`: shard-per-worker parallel
/// capture into `n` archives plus the campaign manifest at `manifest_path`.
/// Every shard but the last holds a multiple of `chunk_traces` traces, so
/// the concatenated chunk streams equal a single archive's; every worker
/// draws its range from the block-seeded stream, so the campaign is
/// bit-identical for any shard count.
fn capture_sharded(
    manifest_path: &str,
    shards: usize,
    meta: ArchiveMeta,
    job: &CaptureJob,
    circuit: CircuitChoice,
    force: bool,
    telemetry: Option<&TelemetrySession>,
) -> Result<(), ()> {
    let num_traces = job.num_traces;
    let total_chunks = num_traces.div_ceil(meta.chunk_traces);
    let per_shard = total_chunks.div_ceil(shards).max(1) * meta.chunk_traces;
    let manifest_file = Path::new(manifest_path);
    let stem = manifest_file
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("campaign");
    let dir = manifest_file.parent().unwrap_or_else(|| Path::new("."));
    // The shard plan: contiguous ranges, chunk-aligned except the last.
    let mut plan: Vec<ShardMeta> = Vec::new();
    let mut start = 0usize;
    while start < num_traces {
        let count = per_shard.min(num_traces - start);
        plan.push(ShardMeta {
            path: format!("{stem}-shard-{:03}.dpltrc", plan.len()),
            traces: count as u64,
            start: start as u64,
        });
        start += count;
    }
    if plan.len() < shards {
        println!(
            "note: {num_traces} trace(s) fill only {} chunk-aligned shard(s), not {shards}",
            plan.len()
        );
    }
    if !force {
        let clash = std::iter::once(manifest_file.to_path_buf())
            .chain(plan.iter().map(|s| dir.join(&s.path)))
            .find(|p| p.exists());
        if let Some(clash) = clash {
            eprintln!(
                "refusing to overwrite {}: it already exists; pass --force to replace the \
                 campaign",
                clash.display()
            );
            return Err(());
        }
    }
    if let Some(session) = telemetry {
        session.start_progress(Some(num_traces as u64), "traces");
    }
    let obs = telemetry.map(|t| t.obs());
    let results: Vec<Result<(u64, BTreeSet<u64>), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .iter()
            .map(|shard| {
                let path = dir.join(&shard.path);
                let (start, count) = (shard.start, shard.traces);
                scope.spawn(move || capture_one_shard(&path, meta, job, start, count, obs))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard capture worker panicked"))
            .collect()
    });
    let mut distinct: BTreeSet<u64> = BTreeSet::new();
    let mut written = 0u64;
    for result in results {
        match result {
            Ok((count, inputs)) => {
                written += count;
                if distinct.len() <= dpl_power::MAX_INPUT_CLASSES {
                    distinct.extend(inputs);
                }
            }
            Err(message) => {
                eprintln!("{message}");
                return Err(());
            }
        }
    }
    let distinct = if distinct.len() > dpl_power::MAX_INPUT_CLASSES {
        0
    } else {
        distinct.len() as u32
    };
    let manifest = match CampaignManifest::new(plan, distinct) {
        Ok(manifest) => manifest,
        Err(e) => {
            eprintln!("cannot assemble the campaign manifest: {e}");
            return Err(());
        }
    };
    if let Err(e) = manifest.save(manifest_path) {
        eprintln!("cannot write {manifest_path}: {e}");
        return Err(());
    }
    let kind = if job.tvla {
        format!(
            ", interleaved TVLA campaign (fixed plaintext {:#X})",
            dpl_bench::TVLA_FIXED_PLAINTEXT
        )
    } else {
        String::new()
    };
    println!(
        "captured {written} traces to {manifest_path}: {} shard(s), model = {}, seed = {}, \
         chunk = {} traces, secret key nibble = {CAMPAIGN_KEY:#X}{kind}",
        manifest.shards().len(),
        meta.model.label(),
        meta.seed,
        meta.chunk_traces,
    );
    for shard in manifest.shards() {
        println!(
            "  {}: traces {}..{}",
            shard.path,
            shard.start,
            shard.start + shard.traces
        );
    }
    if circuit != CircuitChoice::Sbox {
        println!("circuit: {} ({})", circuit.name(), circuit.label());
    }
    print_encoding(&meta);
    if meta.table_digest != 0 {
        println!(
            "hypothesis digest (energy table + circuit): {:#018X} (recorded in every shard \
             header)",
            meta.table_digest
        );
    }
    println!("campaign digest: {:#018x}", manifest.digest());
    Ok(())
}

fn attack_label(result: &AttackResult) -> String {
    let verdict = if result.best_guess == u64::from(CAMPAIGN_KEY) {
        "KEY RECOVERED"
    } else {
        "attack failed"
    };
    format!(
        "best guess = {:#X} ({verdict}), distinguishing ratio = {:.2}",
        result.best_guess,
        result.distinguishing_ratio()
    )
}

/// `repro attack <file> [--dpa|--cpa] [--verify] [--salvage]
/// [--budget <traces>] [--model <name>] [--circuit <name>]`: run an
/// out-of-core attack over an archive.  The profiled-CPA hypothesis is
/// rebuilt from the archive's recorded model tag (or `--model`), over
/// `--circuit` (default: the S-box datapath); when the archive records an
/// energy-table digest the rebuilt table must match it.  `--verify` also
/// loads the archive in memory and demands bit-identical scores,
/// `--budget` caps the reader's in-memory chunk budget (rejecting archives
/// whose chunks exceed it), and `--salvage` attacks a damaged archive's
/// surviving chunks, reporting exactly what was lost.
fn run_attack(args: &[String]) -> ExitCode {
    let (args, telemetry) = match TelemetrySession::from_args(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = attack_command(&args, telemetry.as_ref());
    conclude(outcome, telemetry, "repro attack")
}

/// The body of `repro attack`, separated from [`run_attack`] so the
/// telemetry session flushes even when the attack fails mid-read.
fn attack_command(args: &[String], telemetry: Option<&TelemetrySession>) -> Result<(), ()> {
    const USAGE: &str = "repro attack <file> [--dpa|--cpa] [--verify] [--salvage] \
                         [--budget <traces>] [--model m] [--circuit c] \
                         [--metrics f] [--report json|text] [--trace f] [--progress]";
    let mut path = None;
    let mut use_cpa = false;
    let mut verify = false;
    let mut salvage = false;
    let mut budget = None;
    let mut model_override = None;
    let mut circuit = CircuitChoice::Sbox;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--dpa" => use_cpa = false,
            "--cpa" => use_cpa = true,
            "--verify" => verify = true,
            "--salvage" => salvage = true,
            "--budget" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(traces) if traces > 0 => budget = Some(traces),
                _ => {
                    eprintln!("--budget needs a positive trace count");
                    return Err(());
                }
            },
            "--model" => match parse_model_arg(iter.next()) {
                Ok(m) => model_override = Some(m),
                Err(message) => {
                    eprintln!("{message}");
                    return Err(());
                }
            },
            "--circuit" => match parse_circuit_arg(iter.next()) {
                Ok(c) => circuit = c,
                Err(message) => {
                    eprintln!("{message}");
                    return Err(());
                }
            },
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("{}", unknown_flag("attack", other, USAGE));
                return Err(());
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: {USAGE}");
        return Err(());
    };
    if salvage && verify {
        // --verify's contract is bit-identity against *all* traces loaded
        // in memory; a salvage read deliberately reads fewer.
        eprintln!("--verify and --salvage contradict each other: salvage may skip traces");
        return Err(());
    }
    if is_manifest_file(&path) {
        return attack_campaign(
            &path,
            use_cpa,
            verify,
            salvage,
            budget,
            model_override,
            circuit,
            telemetry,
        );
    }
    let policy = if salvage {
        ReadPolicy::Salvage
    } else {
        ReadPolicy::Strict
    };
    let mut reader = match ArchiveReader::open_with_policy(&path, policy) {
        Ok(reader) => reader,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return Err(());
        }
    };
    if reader.campaign() == dpl_store::CampaignKind::TvlaInterleaved {
        // Symmetric with `repro tvla` refusing attack archives: half the
        // traces of a TVLA capture share one fixed plaintext, so a
        // key-recovery attack over it is statistically meaningless.
        eprintln!(
            "{path} records an interleaved TVLA campaign; key-recovery attacks over it are \
             meaningless — run `repro tvla {path}` instead"
        );
        return Err(());
    }
    if let Some(budget) = budget {
        reader = match reader.with_chunk_budget(budget) {
            Ok(reader) => reader,
            Err(e) => {
                eprintln!("cannot honour --budget {budget}: {e}");
                return Err(());
            }
        };
    }
    if let Some(session) = telemetry {
        reader.set_obs(session.obs());
        // The streaming fold advances the progress plane per chunk; CPA
        // makes two passes over the archive (means, then the centered
        // correlation fold), DPA one.
        let passes = if use_cpa { 2 } else { 1 };
        session.start_progress(Some(reader.trace_count() * passes), "traces");
    }
    println!(
        "{path}: {} traces, {} samples/trace, {} chunks of {} traces, model = {}, seed = {}",
        reader.trace_count(),
        reader.samples_per_trace(),
        reader.chunk_count(),
        reader.meta().chunk_traces,
        reader.meta().model.label(),
        reader.meta().seed
    );
    if budget.is_some() {
        println!(
            "in-memory chunk budget: {} traces per resident chunk",
            reader.chunk_budget()
        );
    }
    if circuit != CircuitChoice::Sbox {
        println!("attack circuit: {} ({})", circuit.name(), circuit.label());
    }
    if let Some(model) = model_override {
        println!("hypothesis model override: {}", model.label());
    }

    let selection = circuit.dpa_selection();
    let recorded = reader.table_digest();
    let model = model_override.or_else(|| energy_model_of(reader.meta().model));
    let profile = rebuild_hypothesis(use_cpa, recorded, model, circuit)?;
    // A profiled CPA needs the device's energy model, falling back to the
    // classic S-box Hamming-weight hypothesis when the tag is unspecified;
    // the DPA path never evaluates it.
    let cache = if use_cpa {
        profile
            .as_ref()
            .map(|(netlist, table)| EnergyCache::new(netlist, table))
    } else {
        None
    };
    let model = move |plaintext: u64, guess: u64| match &cache {
        Some(cache) => cache.energy(plaintext, guess as u8),
        None => dpl_crypto::present_sbox((plaintext ^ guess) as u8).count_ones() as f64,
    };

    let kind = if use_cpa { "CPA" } else { "DPA" };
    let streamed = if salvage {
        let retry = RetryPolicy::new(2);
        let salvaged = if use_cpa {
            cpa_attack_salvage(&mut reader, 16, &model, &retry)
        } else {
            dpa_attack_salvage(&mut reader, 16, &selection, &retry)
        };
        match salvaged {
            Ok((result, damage)) => {
                println!("salvage: {}", damage.render());
                result
            }
            Err(e) => {
                eprintln!("salvage attack failed: {e}");
                return Err(());
            }
        }
    } else {
        match if use_cpa {
            cpa_attack_streaming(&mut reader, 16, &model)
        } else {
            dpa_attack_streaming(&mut reader, 16, &selection)
        } {
            Ok(result) => result,
            Err(e) => {
                eprintln!("out-of-core attack failed: {e}");
                return Err(());
            }
        }
    };
    println!("out-of-core {kind}: {}", attack_label(&streamed));

    if verify {
        let traces = match reader.read_all() {
            Ok(traces) => traces,
            Err(e) => {
                eprintln!("cannot load the archive in memory for --verify: {e}");
                return Err(());
            }
        };
        let in_memory = if use_cpa {
            cpa_attack(&traces, 16, &model)
        } else {
            dpa_attack(&traces, 16, &selection)
        }
        .expect("in-memory attack");
        println!("in-memory   {kind}: {}", attack_label(&in_memory));
        if in_memory.scores != streamed.scores || in_memory.best_guess != streamed.best_guess {
            eprintln!("MISMATCH: out-of-core scores differ from the in-memory attack");
            return Err(());
        }
        println!("verify: out-of-core scores are bit-identical to the in-memory attack");
    }
    Ok(())
}

/// Rebuilds the hypothesis a capture recorded (energy model from the
/// header tag or `--model`, circuit from `--circuit`) and verifies any
/// recorded hypothesis digest — for DPA as much as CPA, since a wrong
/// circuit corrupts the selection function just as silently as a wrong
/// profiled table.  Returns the profiled pair when one is needed (CPA, or
/// a digest to verify).  Errors are printed here; `Err(())` only signals
/// the exit code.
fn rebuild_hypothesis(
    use_cpa: bool,
    recorded: Option<u64>,
    model: Option<EnergyModel>,
    circuit: CircuitChoice,
) -> Result<Option<(GateNetlist, GateEnergyTable)>, ()> {
    if !use_cpa && recorded.is_none() {
        return Ok(None);
    }
    match model {
        Some(model) => {
            let netlist = circuit.netlist();
            let table = GateEnergyTable::for_circuit(model, &CapacitanceModel::default(), &netlist)
                .expect("energy table");
            if let Some(recorded) = recorded {
                let rebuilt = hypothesis_digest(&table, circuit);
                if rebuilt != recorded {
                    eprintln!(
                        "hypothesis digest mismatch: archive records {recorded:#018X}, \
                         rebuilt {} table over circuit `{}` digests to {rebuilt:#018X} — \
                         pass the capture's --model/--circuit",
                        model.name(),
                        circuit.name(),
                    );
                    return Err(());
                }
                println!("hypothesis digest verified: {recorded:#018X} (model + circuit)");
            }
            Ok(Some((netlist, table)))
        }
        None => {
            if recorded.is_some() {
                eprintln!(
                    "the archive records a hypothesis digest but no known model tag; \
                     pass --model (and --circuit) so the hypothesis can be verified"
                );
                return Err(());
            }
            Ok(None)
        }
    }
}

/// Loads every chunk of a source into one in-memory [`TraceSet`] — the
/// sharded counterpart of `ArchiveReader::read_all`, for `--verify`.
fn read_all_chunks<S: ChunkSource>(source: &mut S) -> Result<TraceSet, StoreError> {
    let mut all = TraceSet::new();
    let mut chunk = TraceSet::new();
    for index in 0..source.chunk_count() {
        source.read_chunk_into(index, &mut chunk)?;
        for t in 0..chunk.len() {
            all.push_samples(chunk.inputs()[t], &chunk.trace_samples(t));
        }
    }
    Ok(all)
}

/// The sharded-campaign body of `repro attack`: folds the whole campaign
/// through the [`ShardedReader`]'s global-order chunk stream — the exact
/// fold a single archive of the same traces would get, so scores are
/// bit-identical to the unsharded twin.
#[allow(clippy::too_many_arguments)]
fn attack_campaign(
    path: &str,
    use_cpa: bool,
    verify: bool,
    salvage: bool,
    budget: Option<usize>,
    model_override: Option<EnergyModel>,
    circuit: CircuitChoice,
    telemetry: Option<&TelemetrySession>,
) -> Result<(), ()> {
    if salvage {
        eprintln!(
            "--salvage applies to single archives; scan the campaign with `repro fsck {path}` \
             and salvage damaged shards individually"
        );
        return Err(());
    }
    if budget.is_some() {
        eprintln!("--budget applies to single archives; a campaign already reads shard by shard");
        return Err(());
    }
    let mut source = match ShardedReader::open(path) {
        Ok(source) => source,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return Err(());
        }
    };
    let meta = *source.meta();
    if meta.campaign == dpl_store::CampaignKind::TvlaInterleaved {
        eprintln!(
            "{path} records an interleaved TVLA campaign; key-recovery attacks over it are \
             meaningless — run `repro tvla {path}` instead"
        );
        return Err(());
    }
    if let Some(session) = telemetry {
        source.set_obs(session.obs());
        let passes = if use_cpa { 2 } else { 1 };
        session.start_progress(Some(source.trace_count() * passes), "traces");
    }
    println!(
        "{path}: {} shards, {} traces, {} samples/trace, {} chunks of {} traces, model = {}, \
         seed = {}",
        source.shard_count(),
        source.trace_count(),
        source.samples_per_trace(),
        source.chunk_count(),
        meta.chunk_traces,
        meta.model.label(),
        meta.seed
    );
    if circuit != CircuitChoice::Sbox {
        println!("attack circuit: {} ({})", circuit.name(), circuit.label());
    }
    if let Some(model) = model_override {
        println!("hypothesis model override: {}", model.label());
    }
    let selection = circuit.dpa_selection();
    let recorded = match meta.table_digest {
        0 => None,
        digest => Some(digest),
    };
    let model = model_override.or_else(|| energy_model_of(meta.model));
    let profile = rebuild_hypothesis(use_cpa, recorded, model, circuit)?;
    let cache = if use_cpa {
        profile
            .as_ref()
            .map(|(netlist, table)| EnergyCache::new(netlist, table))
    } else {
        None
    };
    let model = move |plaintext: u64, guess: u64| match &cache {
        Some(cache) => cache.energy(plaintext, guess as u8),
        None => dpl_crypto::present_sbox((plaintext ^ guess) as u8).count_ones() as f64,
    };
    let kind = if use_cpa { "CPA" } else { "DPA" };
    let streamed = match if use_cpa {
        cpa_attack_streaming(&mut source, 16, &model)
    } else {
        dpa_attack_streaming(&mut source, 16, &selection)
    } {
        Ok(result) => result,
        Err(e) => {
            eprintln!("out-of-core attack failed: {e}");
            return Err(());
        }
    };
    println!("out-of-core {kind}: {}", attack_label(&streamed));
    if verify {
        let traces = match read_all_chunks(&mut source) {
            Ok(traces) => traces,
            Err(e) => {
                eprintln!("cannot load the campaign in memory for --verify: {e}");
                return Err(());
            }
        };
        let in_memory = if use_cpa {
            cpa_attack(&traces, 16, &model)
        } else {
            dpa_attack(&traces, 16, &selection)
        }
        .expect("in-memory attack");
        println!("in-memory   {kind}: {}", attack_label(&in_memory));
        if in_memory.scores != streamed.scores || in_memory.best_guess != streamed.best_guess {
            eprintln!("MISMATCH: out-of-core scores differ from the in-memory attack");
            return Err(());
        }
        println!("verify: out-of-core scores are bit-identical to the in-memory attack");
    }
    Ok(())
}

/// `repro info <file> [--json [--fsck]]`: print an archive's header
/// metadata — human-readable by default, machine-readable with `--json`.
/// `--json --fsck` additionally verifies every chunk checksum and embeds
/// the damage summary under a `damage` key (the machine-readable
/// counterpart of `repro fsck`).
fn run_info(args: &[String]) -> ExitCode {
    const USAGE: &str = "repro info <file> [--json [--fsck]]";
    let mut path = None;
    let mut json = false;
    let mut fsck = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--fsck" => fsck = true,
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("{}", unknown_flag("info", other, USAGE));
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: {USAGE}");
        return ExitCode::FAILURE;
    };
    if fsck && !json {
        eprintln!(
            "--fsck here augments the JSON document; pass --json too (or use `repro fsck` \
             for the human-readable scan)"
        );
        return ExitCode::FAILURE;
    }
    let report = if json {
        dpl_bench::info_json(&path, fsck)
    } else {
        dpl_bench::info_report(&path)
    };
    match report {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// `repro charac-table <gate> [--model <name>]`: transient-characterize
/// (or, for built-in models, analytically derive) one library cell's
/// per-input-event energy row and print it with its spread and table
/// digest.
fn run_charac_table(args: &[String]) -> ExitCode {
    const USAGE: &str = "repro charac-table <gate> [--model <name>]";
    let mut gate = None;
    let mut model = EnergyModel::characterized(LeakageModel::GenuineSabl);
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--model" => match parse_model_arg(iter.next()) {
                Ok(m) => model = m,
                Err(message) => {
                    eprintln!("{message}");
                    return ExitCode::FAILURE;
                }
            },
            other if gate.is_none() && !other.starts_with("--") => gate = Some(other.to_string()),
            other => {
                eprintln!("{}", unknown_flag("charac-table", other, USAGE));
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(gate) = gate else {
        eprintln!("usage: {USAGE}");
        return ExitCode::FAILURE;
    };
    let kind = match GateKind::by_name(&gate) {
        Ok(kind) => kind,
        Err(_) => {
            let names: Vec<String> = GateKind::all()
                .iter()
                .map(|k| k.name().to_ascii_lowercase())
                .collect();
            eprintln!(
                "unknown gate `{gate}`; expected one of: {}",
                names.join(", ")
            );
            return ExitCode::FAILURE;
        }
    };
    match dpl_bench::charac_table_report(kind, model) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// `repro tvla <file> [--order 1|2|both] [--workers n] [--salvage]`:
/// streaming Welch t-test over an interleaved fixed-vs-random archive;
/// `--salvage` assesses a damaged archive's surviving chunks.
fn run_tvla(args: &[String]) -> ExitCode {
    let (args, telemetry) = match TelemetrySession::from_args(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = tvla_command(&args, telemetry.as_ref());
    conclude(outcome, telemetry, "repro tvla")
}

/// The body of `repro tvla`, separated from [`run_tvla`] so the telemetry
/// session flushes even when the assessment fails mid-fold.
fn tvla_command(args: &[String], telemetry: Option<&TelemetrySession>) -> Result<(), ()> {
    const USAGE: &str = "repro tvla <file> [--order 1|2|both] [--workers n] [--salvage] \
                         [--metrics f] [--report json|text] [--trace f] [--progress]";
    let mut path = None;
    let mut orders: Vec<TvlaOrder> = vec![TvlaOrder::First, TvlaOrder::Second];
    let mut workers = None;
    let mut salvage = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--salvage" => salvage = true,
            "--order" => match iter.next().map(String::as_str) {
                Some("1") => orders = vec![TvlaOrder::First],
                Some("2") => orders = vec![TvlaOrder::Second],
                Some("both") => orders = vec![TvlaOrder::First, TvlaOrder::Second],
                _ => {
                    eprintln!("--order needs one of: 1, 2, both");
                    return Err(());
                }
            },
            "--workers" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => workers = Some(n),
                _ => {
                    eprintln!("--workers needs a positive count");
                    return Err(());
                }
            },
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("{}", unknown_flag("tvla", other, USAGE));
                return Err(());
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: {USAGE}");
        return Err(());
    };
    if salvage && workers.is_some() {
        // The sample-column sharding of --workers re-reads every chunk per
        // shard; the salvage fold is deliberately single-pass per order.
        eprintln!("--salvage runs single-threaded; drop --workers");
        return Err(());
    }
    if salvage && is_manifest_file(&path) {
        eprintln!(
            "--salvage applies to single archives; scan the campaign with `repro fsck {path}` \
             and salvage damaged shards individually"
        );
        return Err(());
    }
    if let Some(session) = telemetry {
        // The fold advances the progress plane per chunk; a first-order
        // t-test is one pass over the archive, a second-order test two
        // (means, then centered moments).  The total is a header probe —
        // when the file cannot be opened the progress plane just runs
        // without an ETA and the fold below reports the real error.
        let passes: u64 = orders
            .iter()
            .map(|order| match order {
                TvlaOrder::First => 1,
                TvlaOrder::Second => 2,
            })
            .sum();
        let total = if is_manifest_file(&path) {
            ShardedReader::open(&path)
                .ok()
                .map(|reader| reader.trace_count() * passes)
        } else {
            ArchiveReader::open_with_policy(&path, ReadPolicy::Salvage)
                .ok()
                .map(|reader| reader.trace_count() * passes)
        };
        session.start_progress(total, "traces");
    }
    let obs = telemetry.map(|t| t.obs());
    let report = if salvage {
        dpl_bench::tvla_salvage_report_observed(&path, &orders, obs)
    } else {
        dpl_bench::tvla_report_observed(&path, &orders, workers, obs)
    };
    match report {
        Ok(report) => {
            print!("{report}");
            Ok(())
        }
        Err(message) => {
            eprintln!("{message}");
            Err(())
        }
    }
}

/// `repro fsck <file> [--repair]`: verify every chunk checksum of an
/// archive and report the damage, chunk by chunk.  Exits 0 for a clean
/// archive, 1 for a damaged (or unfinished) one.  `--repair` writes the
/// surviving traces to a quarantined clean copy at `<file>.repaired` —
/// the original is never modified.
fn run_fsck(args: &[String]) -> ExitCode {
    const USAGE: &str = "repro fsck <file> [--repair]";
    let mut path = None;
    let mut repair = false;
    for arg in args {
        match arg.as_str() {
            "--repair" => repair = true,
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("{}", unknown_flag("fsck", other, USAGE));
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: {USAGE}");
        return ExitCode::FAILURE;
    };
    if is_manifest_file(&path) {
        return fsck_campaign(&path, repair);
    }
    // Salvage policy: a wrong file length is damage to report, not a
    // reason to refuse the scan.  Only the header must decode.
    let mut reader = match ArchiveReader::open_with_policy(&path, ReadPolicy::Salvage) {
        Ok(reader) => reader,
        Err(StoreError::BadMagic { found }) if found == [0u8; 8] => {
            eprintln!(
                "{path}: unfinished capture (placeholder header) — the writer never reached \
                 finish; run `repro capture {path} <traces> --resume` with the campaign's \
                 flags to continue it"
            );
            return ExitCode::FAILURE;
        }
        Err(StoreError::Truncated {
            at: ReadSite::Header,
        }) => {
            eprintln!(
                "{path}: unfinished capture (file ends inside the header) — run \
                 `repro capture {path} <traces> --resume` with the campaign's flags to \
                 continue it"
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let retry = RetryPolicy::new(2);
    let report = match reader.scan(&retry) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fsck of {path} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{path}: {}", report.render());
    if repair {
        let dst = format!("{path}.repaired");
        match repair_archive(&path, &dst, &retry) {
            Ok((_, kept)) => {
                println!("repaired copy: {kept} trace(s) written to {dst}");
            }
            Err(e) => {
                eprintln!("repair into {dst} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The campaign-manifest body of `repro fsck`: scans every shard in
/// manifest order and reports per-shard damage.  Exits 0 only when every
/// shard is clean.
fn fsck_campaign(path: &str, repair: bool) -> ExitCode {
    if repair {
        eprintln!(
            "--repair applies to single archives; repair damaged shards individually with \
             `repro fsck <shard> --repair`"
        );
        return ExitCode::FAILURE;
    }
    // Salvage policy for the same reason as single archives: shard damage
    // is something to report, not a reason to refuse the scan.
    let mut reader = match ShardedReader::open_with_policy(path, ReadPolicy::Salvage) {
        Ok(reader) => reader,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reports = match reader.scan_shards(&RetryPolicy::new(2)) {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("fsck of {path} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shards: Vec<String> = reader
        .manifest()
        .shards()
        .iter()
        .map(|shard| shard.path.clone())
        .collect();
    println!("{path}: campaign manifest, {} shard(s)", shards.len());
    let mut clean = true;
    for (name, report) in shards.iter().zip(&reports) {
        println!("  {name}: {}", report.render());
        clean &= report.is_clean();
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `repro mtd [--seed s] [--attack dpa|cpa] [--reps r] [--model <name>]
/// [--circuit <name>]`: the measurements-to-disclosure sweep — across
/// every built-in leakage model by default, or for one (possibly
/// characterisation-derived) model / library circuit with `--model` /
/// `--circuit`.
fn run_mtd(args: &[String]) -> ExitCode {
    let (args, seed) = match take_seed(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let (args, telemetry) = match TelemetrySession::from_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = mtd_command(&args, seed, telemetry.as_ref());
    conclude(outcome, telemetry, "repro mtd")
}

/// The body of `repro mtd`, separated from [`run_mtd`] so the telemetry
/// session flushes on every exit path.
fn mtd_command(
    args: &[String],
    seed: Option<u64>,
    telemetry: Option<&TelemetrySession>,
) -> Result<(), ()> {
    const USAGE: &str = "repro mtd [--seed s] [--attack dpa|cpa] [--reps r] [--model m] \
                         [--circuit c] [--metrics f] [--report json|text] [--trace f] \
                         [--progress]";
    let mut attack = MtdAttack::Cpa;
    let mut repetitions = 8usize;
    let mut model = None;
    let mut circuit = CircuitChoice::Sbox;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--attack" => match iter.next().map(String::as_str) {
                Some("dpa") => attack = MtdAttack::Dpa,
                Some("cpa") => attack = MtdAttack::Cpa,
                _ => {
                    eprintln!("--attack needs one of: dpa, cpa");
                    return Err(());
                }
            },
            "--reps" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(r) if r > 0 => repetitions = r,
                _ => {
                    eprintln!("--reps needs a positive count");
                    return Err(());
                }
            },
            "--model" => match parse_model_arg(iter.next()) {
                Ok(m) => model = Some(m),
                Err(message) => {
                    eprintln!("{message}");
                    return Err(());
                }
            },
            "--circuit" => match parse_circuit_arg(iter.next()) {
                Ok(c) => circuit = c,
                Err(message) => {
                    eprintln!("{message}");
                    return Err(());
                }
            },
            other => {
                eprintln!("{}", unknown_flag("mtd", other, USAGE));
                return Err(());
            }
        }
    }
    let seed = seed.unwrap_or(dpl_bench::DEFAULT_EXPERIMENT_SEED);
    if let Some(session) = telemetry {
        // One progress tick per finished disclosure curve: the historical
        // sweep runs one curve per built-in leakage model, the targeted
        // form exactly one.
        let curves = match (model, circuit) {
            (None, CircuitChoice::Sbox) => LeakageModel::all().len() as u64,
            _ => 1,
        };
        session.start_progress(Some(curves), "curves");
    }
    let obs = telemetry.map(|t| t.obs());
    let report = match (model, circuit) {
        // The historical sweep: every built-in model over the S-box
        // datapath (byte-identical output).
        (None, CircuitChoice::Sbox) => {
            dpl_bench::mtd_experiment_observed(seed, dpl_bench::MTD_GRID, repetitions, attack, obs)
        }
        (maybe_model, circuit) => {
            let model = maybe_model.unwrap_or(EnergyModel::builtin(LeakageModel::HammingWeight));
            dpl_bench::mtd_experiment_for_observed(
                model,
                circuit,
                seed,
                dpl_bench::MTD_GRID,
                repetitions,
                attack,
                obs,
            )
        }
    };
    print!("{report}");
    Ok(())
}

/// `repro verify <circuit>|all [--model <name>] [--tolerance <t>]`: prove
/// every output of the synthesized netlist equivalent to its specification
/// oracle, run the DPL security lint under the given (constant-power)
/// energy model, emit the security certificate, and replay it through the
/// independent `check` path — all in memory.  `all` covers every circuit
/// the CLI can capture: the S-box datapath, all 18 library-cell datapaths
/// and the one-round mini-PRESENT.
fn run_verify(args: &[String]) -> ExitCode {
    let (args, telemetry) = match TelemetrySession::from_args(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = verify_command(&args, telemetry.as_ref());
    conclude(outcome, telemetry, "repro verify")
}

/// The body of `repro verify`, separated from [`run_verify`] so the
/// telemetry session flushes even when a proof or replay fails — the
/// partial span tree then shows exactly which circuit died and in which
/// phase.
fn verify_command(args: &[String], telemetry: Option<&TelemetrySession>) -> Result<(), ()> {
    const USAGE: &str = "repro verify <circuit>|all [--model m] [--tolerance t] \
                         [--metrics f] [--report json|text] [--trace f] [--progress]";
    let mut target = None;
    let mut model = EnergyModel::builtin(LeakageModel::EnhancedSabl);
    let mut tolerance = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--model" => match parse_model_arg(iter.next()) {
                Ok(m) => model = m,
                Err(message) => {
                    eprintln!("{message}");
                    return Err(());
                }
            },
            "--tolerance" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = Some(t),
                _ => {
                    eprintln!("--tolerance needs a non-negative relative spread");
                    return Err(());
                }
            },
            other if target.is_none() && !other.starts_with("--") => {
                target = Some(other.to_string());
            }
            other => {
                eprintln!("{}", unknown_flag("verify", other, USAGE));
                return Err(());
            }
        }
    }
    let Some(target) = target else {
        eprintln!("usage: {USAGE}");
        return Err(());
    };
    let circuits = if target == "all" {
        dpl_verify::VerifiedCircuit::all()
    } else {
        match dpl_verify::VerifiedCircuit::parse(&target) {
            Some(circuit) => vec![circuit],
            None => {
                eprintln!(
                    "unknown circuit `{target}`; expected `all`, `sbox`, `presentN` or a \
                     library gate name (e.g. oai22, maj3)"
                );
                return Err(());
            }
        }
    };
    if let Some(session) = telemetry {
        session.start_progress(Some(circuits.len() as u64), "circuits");
    }
    let obs = telemetry.map(|t| t.obs());
    for circuit in &circuits {
        let mut request = dpl_verify::CertificateRequest {
            circuit: *circuit,
            model,
            tolerance: dpl_verify::CertificateRequest::STRICT_TOLERANCE,
        };
        if let Some(tolerance) = tolerance {
            request = request.with_tolerance(tolerance);
        }
        let emitted = match obs {
            Some(obs) => dpl_verify::emit_certificate_observed(&request, obs),
            None => dpl_verify::emit_certificate(&request),
        };
        let certificate = match emitted {
            Ok(certificate) => certificate,
            Err(e) => {
                eprintln!("{}: certification FAILED: {e}", circuit.name());
                return Err(());
            }
        };
        let checked = match obs {
            Some(obs) => dpl_verify::check_certificate_observed(&certificate.to_text(), obs),
            None => dpl_verify::check_certificate(&certificate.to_text()),
        };
        let report = match checked {
            Ok(report) => report,
            Err(e) => {
                eprintln!("{}: certificate replay FAILED: {e}", circuit.name());
                return Err(());
            }
        };
        println!(
            "{}: proven equivalent, lint clean, certificate replayed \
             ({} gates, {} outputs, {} BDD nodes, model {})",
            report.circuit, report.gates, report.outputs, report.bdd_nodes, report.model
        );
        if let Some(obs) = obs {
            obs.progress_advance(1);
        }
    }
    println!(
        "all {} circuit(s) verified under the {} model",
        circuits.len(),
        model.name()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    // One consistent scope check for every flag with subcommand-local
    // meaning, before any subcommand parsing: a flag on the wrong
    // subcommand is refused (naming the subcommand) rather than silently
    // ignored.
    if let Err(message) = check_flag_scopes(which, args.get(1..).unwrap_or(&[])) {
        eprintln!("{message}");
        return ExitCode::FAILURE;
    }
    match which {
        "bench" => return run_bench(&args[1..]),
        "capture" => return run_capture(&args[1..]),
        "attack" => return run_attack(&args[1..]),
        "info" => return run_info(&args[1..]),
        "charac-table" => return run_charac_table(&args[1..]),
        "tvla" => return run_tvla(&args[1..]),
        "fsck" => return run_fsck(&args[1..]),
        "mtd" => return run_mtd(&args[1..]),
        "verify" => return run_verify(&args[1..]),
        _ => {}
    }
    let (args, seed) = match take_seed(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let seed = seed.unwrap_or(dpl_bench::DEFAULT_EXPERIMENT_SEED);
    let dpa_traces: usize = match args.get(1) {
        None => 2000,
        Some(s) => match s.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("invalid trace count `{s}`; expected a positive integer");
                return ExitCode::FAILURE;
            }
        },
    };

    let report = match which {
        "all" => dpl_bench::run_all(dpa_traces),
        "fig2" => dpl_bench::fig2_memory_effect(),
        "fig3" => dpl_bench::fig3_transient(),
        "fig4" => dpl_bench::fig4_capacitance(),
        "fig5" => dpl_bench::fig5_oai22(),
        "fig6" => dpl_bench::fig6_enhanced(),
        "cvsl" => dpl_bench::cvsl_comparison(),
        "dpa" => dpl_bench::dpa_experiment_seeded(dpa_traces, seed),
        "cpa" => dpl_bench::cpa_experiment_seeded(dpa_traces, seed),
        "library" => dpl_bench::library_sweep(),
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected one of: all, fig2, fig3, fig4, fig5, \
                 fig6, cvsl, dpa, cpa, library, bench, capture, attack, info, charac-table, \
                 tvla, fsck, mtd, verify"
            );
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");
    ExitCode::SUCCESS
}

//! Bench-history regression plane: comparing a fresh [`PerfReport`]
//! against a committed baseline, and appending stamped history records.
//!
//! `repro bench --compare BENCH_dpa.json [--max-regression <pct>]` diffs
//! the run's rows against the baseline's by name on **throughput**
//! (`per_second`), not raw seconds — quick and full configurations process
//! different item counts, so only the normalized rate is comparable across
//! them.  A row regresses when its throughput drops by more than the
//! threshold; rows the baseline has but the run lacks are regressions too
//! (a silently vanished measurement is exactly what a gate must catch).
//! `repro bench --history <file>` appends one stamped JSON line per run,
//! building the perf trajectory alongside the committed baseline snapshot.

use std::fmt::Write as _;

use dpl_obs::Json;

use crate::perf::{git_revision, PerfReport, BENCH_SCHEMA_VERSION};

/// Rows whose baseline best-run time sits below this are dominated by
/// timer/scheduler noise; their threshold is doubled rather than asking a
/// sub-millisecond measurement to reproduce within a tight band.
const NOISY_ROW_SECONDS: f64 = 1e-3;

/// One baseline row as parsed from a `BENCH_dpa.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Stable measurement name.
    pub name: String,
    /// Best wall-clock seconds recorded by the baseline.
    pub seconds: f64,
    /// Baseline throughput in items per second.
    pub per_second: f64,
}

/// A parsed baseline: the stamps plus every row.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// The baseline's `schema_version` stamp (1 when the document predates
    /// the stamp).
    pub schema_version: u64,
    /// The baseline's `git_rev` stamp, when present.
    pub git_rev: Option<String>,
    /// Every measurement row of the baseline.
    pub rows: Vec<BaselineRow>,
}

impl Baseline {
    /// Parses a `BENCH_dpa.json` document.
    ///
    /// # Errors
    ///
    /// Returns a rendered message for malformed JSON or a document without
    /// a usable `results` array.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let json = Json::parse(text).map_err(|e| format!("malformed baseline JSON: {e}"))?;
        let schema_version = json
            .field("schema_version")
            .and_then(Json::as_u64)
            .unwrap_or(1);
        let git_rev = json
            .field("git_rev")
            .and_then(Json::as_str)
            .map(str::to_owned);
        let results = match json.field("results") {
            Some(Json::Array(rows)) => rows,
            _ => return Err("baseline JSON has no `results` array".into()),
        };
        let mut rows = Vec::with_capacity(results.len());
        for entry in results {
            let name = entry
                .field("name")
                .and_then(Json::as_str)
                .ok_or_else(|| "baseline row without a `name`".to_string())?;
            let seconds = entry
                .field("seconds")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("baseline row `{name}` without `seconds`"))?;
            let per_second = entry
                .field("per_second")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("baseline row `{name}` without `per_second`"))?;
            rows.push(BaselineRow {
                name: name.to_owned(),
                seconds,
                per_second,
            });
        }
        if rows.is_empty() {
            return Err("baseline JSON has an empty `results` array".into());
        }
        Ok(Baseline {
            schema_version,
            git_rev,
            rows,
        })
    }

    /// Loads and parses a baseline file.
    ///
    /// # Errors
    ///
    /// As [`Baseline::parse`], plus unreadable files.
    pub fn load(path: &str) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Baseline::parse(&text).map_err(|e| format!("{path}: {e}"))
    }
}

/// The verdict for one baseline row.
#[derive(Debug, Clone, PartialEq)]
pub struct RowComparison {
    /// Measurement name.
    pub name: String,
    /// Baseline throughput (items/s).
    pub baseline_per_second: f64,
    /// This run's throughput, or `None` when the row vanished.
    pub current_per_second: Option<f64>,
    /// Relative throughput change: `+0.10` is 10 % faster, `-0.30` is 30 %
    /// slower.  `None` when the row vanished or the baseline rate is 0.
    pub change: Option<f64>,
    /// The regression threshold applied to this row (already widened for
    /// noisy sub-millisecond baselines).
    pub threshold: f64,
    /// Whether this row fails the gate.
    pub regressed: bool,
}

/// The outcome of one `--compare` run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// One verdict per baseline row, in baseline order.
    pub rows: Vec<RowComparison>,
    /// The base threshold the comparison ran with.
    pub max_regression: f64,
}

impl BenchComparison {
    /// Compares a fresh report against a baseline: every baseline row must
    /// reappear with throughput no more than `max_regression` below the
    /// baseline's (doubled for baselines faster than a millisecond, where
    /// best-of-N timing is noise-dominated).  Rows the run adds are
    /// ignored — new measurements must not fail old gates.
    pub fn compare(report: &PerfReport, baseline: &Baseline, max_regression: f64) -> Self {
        let rows = baseline
            .rows
            .iter()
            .map(|base| {
                let threshold = if base.seconds < NOISY_ROW_SECONDS {
                    max_regression * 2.0
                } else {
                    max_regression
                };
                let current = report.row(&base.name);
                let change = current.and_then(|row| {
                    (base.per_second > 0.0).then(|| row.per_second / base.per_second - 1.0)
                });
                let regressed = match change {
                    Some(change) => change < -threshold,
                    // A vanished row is always a regression; an unrateable
                    // baseline (0 items/s) can never fail the gate.
                    None => current.is_none(),
                };
                RowComparison {
                    name: base.name.clone(),
                    baseline_per_second: base.per_second,
                    current_per_second: current.map(|r| r.per_second),
                    change,
                    threshold,
                    regressed,
                }
            })
            .collect();
        BenchComparison {
            rows,
            max_regression,
        }
    }

    /// Rows that fail the gate.
    pub fn regressions(&self) -> impl Iterator<Item = &RowComparison> {
        self.rows.iter().filter(|row| row.regressed)
    }

    /// Whether the whole comparison passes.
    pub fn passed(&self) -> bool {
        self.regressions().next().is_none()
    }

    /// Human-readable comparison table plus the verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "\n=== Bench comparison (max regression {:.0} %, noisy rows {:.0} %) ===",
            self.max_regression * 100.0,
            self.max_regression * 200.0
        );
        let _ = writeln!(
            out,
            "{:>28} {:>16} {:>16} {:>9}  verdict",
            "measurement", "baseline/s", "current/s", "change"
        );
        for row in &self.rows {
            let current = match row.current_per_second {
                Some(rate) => format!("{rate:.0}"),
                None => "missing".to_string(),
            };
            let change = match row.change {
                Some(change) => format!("{:+.1} %", change * 100.0),
                None => "-".to_string(),
            };
            let verdict = if row.regressed { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "{:>28} {:>16.0} {:>16} {:>9}  {verdict}",
                row.name, row.baseline_per_second, current, change
            );
        }
        let regressed: Vec<&str> = self.regressions().map(|r| r.name.as_str()).collect();
        if regressed.is_empty() {
            let _ = writeln!(out, "bench gate: PASS ({} rows compared)", self.rows.len());
        } else {
            let _ = writeln!(
                out,
                "bench gate: FAIL — {} of {} rows regressed: {}",
                regressed.len(),
                self.rows.len(),
                regressed.join(", ")
            );
        }
        out
    }
}

/// One stamped `BENCH_history.jsonl` record for a run: schema version, git
/// revision, generation time, workload sizes and every row, as a single
/// compact JSON line.
pub fn history_line(report: &PerfReport) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let rows = report
        .rows
        .iter()
        .map(|row| {
            Json::object(vec![
                ("name", Json::str(row.name)),
                ("items", Json::U64(row.items as u64)),
                ("unit", Json::str(row.unit)),
                ("seconds", Json::F64(row.seconds)),
                ("per_second", Json::F64(row.per_second)),
            ])
        })
        .collect();
    let record = Json::object(vec![
        ("bench", Json::str("dpa_pipeline")),
        ("schema_version", Json::U64(u64::from(BENCH_SCHEMA_VERSION))),
        ("git_rev", git_revision().map_or(Json::Null, Json::str)),
        ("generated_unix_secs", Json::U64(unix_secs)),
        ("gen_traces", Json::U64(report.config.gen_traces as u64)),
        (
            "attack_traces",
            Json::U64(report.config.attack_traces as u64),
        ),
        ("repeats", Json::U64(report.config.repeats as u64)),
        ("results", Json::Array(rows)),
    ]);
    record.render_compact()
}

/// Appends one [`history_line`] record to `path` (creating the file on
/// first use).
///
/// # Errors
///
/// Returns a rendered message when the file cannot be appended to.
pub fn append_history(path: &str, report: &PerfReport) -> Result<(), String> {
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {path}: {e}"))?;
    writeln!(file, "{}", history_line(report)).map_err(|e| format!("cannot append {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{PerfConfig, PerfRow};

    fn report(rows: Vec<PerfRow>) -> PerfReport {
        PerfReport {
            config: PerfConfig {
                gen_traces: 100,
                attack_traces: 100,
                repeats: 1,
            },
            rows,
        }
    }

    fn perf_row(name: &'static str, seconds: f64, per_second: f64) -> PerfRow {
        PerfRow {
            name,
            items: 100,
            unit: "traces",
            seconds,
            per_second,
        }
    }

    const BASELINE: &str = r#"{
  "bench": "dpa_pipeline",
  "schema_version": 2,
  "git_rev": "abc123def456",
  "generated_unix_secs": 1700000000,
  "results": [
    {"name": "simulate_traces", "items": 5000, "unit": "traces", "seconds": 5e-1, "per_second": 10000.0},
    {"name": "dpa_attack", "items": 1, "unit": "attacks", "seconds": 2e-4, "per_second": 5000.0}
  ]
}
"#;

    #[test]
    fn baseline_parses_stamps_and_rows() {
        let baseline = Baseline::parse(BASELINE).unwrap();
        assert_eq!(baseline.schema_version, 2);
        assert_eq!(baseline.git_rev.as_deref(), Some("abc123def456"));
        assert_eq!(baseline.rows.len(), 2);
        assert_eq!(baseline.rows[0].name, "simulate_traces");
        assert!((baseline.rows[0].per_second - 10000.0).abs() < 1e-9);
    }

    #[test]
    fn unstamped_baseline_defaults_to_schema_one() {
        let text = r#"{"results": [{"name": "a", "seconds": 1.0, "per_second": 5.0}]}"#;
        let baseline = Baseline::parse(text).unwrap();
        assert_eq!(baseline.schema_version, 1);
        assert_eq!(baseline.git_rev, None);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse(r#"{"bench": "x"}"#).is_err());
        assert!(Baseline::parse(r#"{"results": []}"#).is_err());
        assert!(Baseline::parse(r#"{"results": [{"name": "a"}]}"#).is_err());
    }

    #[test]
    fn matching_run_passes_and_faster_rows_report_positive_change() {
        let baseline = Baseline::parse(BASELINE).unwrap();
        let run = report(vec![
            perf_row("simulate_traces", 0.4, 12500.0),
            perf_row("dpa_attack", 2e-4, 5000.0),
        ]);
        let comparison = BenchComparison::compare(&run, &baseline, 0.25);
        assert!(comparison.passed());
        assert!(comparison.rows[0].change.unwrap() > 0.24);
        assert!(comparison.render().contains("bench gate: PASS"));
    }

    #[test]
    fn slow_rows_regress_and_fail_the_gate() {
        let baseline = Baseline::parse(BASELINE).unwrap();
        let run = report(vec![
            perf_row("simulate_traces", 1.0, 5000.0), // 50 % slower
            perf_row("dpa_attack", 2e-4, 5000.0),
        ]);
        let comparison = BenchComparison::compare(&run, &baseline, 0.25);
        assert!(!comparison.passed());
        let rendered = comparison.render();
        assert!(rendered.contains("bench gate: FAIL"));
        assert!(rendered.contains("simulate_traces"));
        assert!(rendered.contains("REGRESSED"));
    }

    #[test]
    fn noisy_sub_millisecond_rows_get_a_doubled_threshold() {
        let baseline = Baseline::parse(BASELINE).unwrap();
        // dpa_attack's baseline took 0.2 ms: 40 % slower is inside the
        // doubled 50 % band, while simulate_traces at 0.5 s would fail.
        let run = report(vec![
            perf_row("simulate_traces", 0.5, 10000.0),
            perf_row("dpa_attack", 4e-4, 3000.0),
        ]);
        let comparison = BenchComparison::compare(&run, &baseline, 0.25);
        assert!(comparison.passed());
        assert!((comparison.rows[1].threshold - 0.5).abs() < 1e-9);
    }

    #[test]
    fn vanished_rows_are_regressions() {
        let baseline = Baseline::parse(BASELINE).unwrap();
        let run = report(vec![perf_row("simulate_traces", 0.5, 10000.0)]);
        let comparison = BenchComparison::compare(&run, &baseline, 0.25);
        assert!(!comparison.passed());
        let missing = &comparison.rows[1];
        assert_eq!(missing.name, "dpa_attack");
        assert_eq!(missing.current_per_second, None);
        assert!(missing.regressed);
        assert!(comparison.render().contains("missing"));
    }

    #[test]
    fn history_line_is_one_stamped_json_object() {
        let run = report(vec![perf_row("simulate_traces", 0.5, 10000.0)]);
        let line = history_line(&run);
        assert!(!line.contains('\n'));
        let json = Json::parse(&line).unwrap();
        assert_eq!(
            json.field("schema_version").and_then(Json::as_u64),
            Some(u64::from(BENCH_SCHEMA_VERSION))
        );
        assert!(json.field("git_rev").is_some());
        assert!(json
            .field("generated_unix_secs")
            .and_then(Json::as_u64)
            .is_some());
        let Some(Json::Array(rows)) = json.field("results") else {
            panic!("results array missing");
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].field("name").and_then(Json::as_str),
            Some("simulate_traces")
        );
    }
}

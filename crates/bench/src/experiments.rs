//! The figure-by-figure reproduction experiments.

use std::fmt::Write as _;

use dpl_cells::{
    characterize_cycles, simulate_event, CapacitanceModel, CvslCell, DischargeProfile,
    EventOptions, SablCell,
};
use dpl_core::{verify, Dpdn, GateKind, GateLibrary};
use dpl_crypto::{
    present_sbox, simulate_traces_with_table, synthesize_sbox_with_key, EnergyCache,
    GateEnergyTable, LeakageModel, LeakageOptions,
};
use dpl_logic::parse_expr;
use dpl_power::{cpa_attack, dpa_attack, metrics};

fn heading(out: &mut String, title: &str) {
    let _ = writeln!(out, "\n=== {title} ===");
}

/// Experiment E1 (Fig. 2): genuine vs. fully connected AND-NAND DPDN and the
/// memory effect of the genuine network.
pub fn fig2_memory_effect() -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Fig. 2 — AND-NAND DPDN: genuine vs. fully connected",
    );
    let (f, ns) = parse_expr("A.B").expect("static formula");
    let genuine = Dpdn::genuine(&f, &ns).expect("synthesis");
    let fc = Dpdn::fully_connected(&f, &ns).expect("synthesis");

    for (label, gate) in [("genuine", &genuine), ("fully connected", &fc)] {
        let report = verify(gate).expect("verification");
        let _ = writeln!(
            out,
            "{label:>16}: devices = {}, internal nodes = {}, fully connected = {}, \
             functionally correct = {}",
            gate.device_count(),
            gate.internal_nodes().len(),
            report.is_fully_connected(),
            report.is_functionally_correct()
        );
        for event in report.connectivity.events() {
            let floating: Vec<String> = event
                .floating
                .iter()
                .map(|n| gate.network().node_name(*n).to_string())
                .collect();
            let _ = writeln!(
                out,
                "{label:>16}  (A,B) = ({},{}): floating internal nodes = [{}]",
                event.assignment & 1,
                (event.assignment >> 1) & 1,
                floating.join(", ")
            );
        }
    }
    let _ = writeln!(
        out,
        "expected shape: the genuine network leaves node W floating for (A,B)=(0,0); \
         the fully connected network never floats a node."
    );
    out
}

/// Experiment E2 (Fig. 3): transient simulation of the SABL AND-NAND gate
/// for the (0,1) and (1,1) inputs — output voltages and supply current
/// should be indistinguishable.
pub fn fig3_transient() -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Fig. 3 — SABL AND-NAND transient: supply current for (0,1) vs (1,1)",
    );
    let (f, ns) = parse_expr("A.B").expect("static formula");
    let dpdn = Dpdn::fully_connected(&f, &ns).expect("synthesis");
    let model = CapacitanceModel::default();
    let cell = SablCell::new(&dpdn, &model);
    let opts = EventOptions::default();

    let mut waves = Vec::new();
    for assignment in [0b10u64, 0b11u64] {
        let result =
            simulate_event(cell.circuit(), cell.pins(), assignment, &opts).expect("simulation");
        let _ = writeln!(
            out,
            "input (A,B)=({},{}): peak supply current = {:.3e} A, supply charge = {:.3} fC, \
             energy = {:.3} fJ",
            assignment & 1,
            (assignment >> 1) & 1,
            result.supply_current().peak(),
            result.supply_charge() * 1e15,
            result.supply_energy(opts.vdd) * 1e15
        );
        waves.push(result);
    }
    let rms = waves[0]
        .supply_current()
        .rms_difference(waves[1].supply_current());
    let peak = waves[0].supply_current().peak().max(1e-30);
    let _ = writeln!(
        out,
        "relative RMS difference between the two supply-current waveforms: {:.4} %",
        100.0 * rms / peak
    );
    let _ = writeln!(
        out,
        "expected shape: the two waveforms coincide (the paper's Fig. 3 traces are \
         visually identical)."
    );
    out
}

/// Experiment E3 (Fig. 4): discharged capacitance per input event of the
/// SABL AND-NAND gate.
pub fn fig4_capacitance() -> String {
    let mut out = String::new();
    heading(&mut out, "Fig. 4 — discharged capacitance per input event");
    let (f, ns) = parse_expr("A.B").expect("static formula");
    let model = CapacitanceModel::default();
    for (label, gate) in [
        ("genuine", Dpdn::genuine(&f, &ns).expect("synthesis")),
        (
            "fully connected",
            Dpdn::fully_connected(&f, &ns).expect("synthesis"),
        ),
    ] {
        let profile = DischargeProfile::analyze(&gate, &model).expect("analysis");
        for event in profile.events() {
            let _ = writeln!(
                out,
                "{label:>16}  (A,B)=({},{}): C_tot = {:.2} fF ({} internal nodes discharge)",
                event.assignment & 1,
                (event.assignment >> 1) & 1,
                event.total_capacitance * 1e15,
                event.discharged_internal.len()
            );
        }
        let _ = writeln!(
            out,
            "{label:>16}  spread (max-min)/max = {:.2} %",
            100.0 * profile.capacitance_spread()
        );
    }
    let _ = writeln!(
        out,
        "expected shape: the fully connected gate discharges the same C_tot for every \
         event (paper: 19.32 fF vs 19.38 fF); the genuine gate does not."
    );
    out
}

/// Experiment E4 (Fig. 5): the OAI22 design example — both design procedures
/// produce a fully connected network with the same device count.
pub fn fig5_oai22() -> String {
    let mut out = String::new();
    heading(&mut out, "Fig. 5 — OAI22 design example (A+B).(C+D)");
    let (f, ns) = parse_expr("(A+B).(C+D)").expect("static formula");
    let genuine = Dpdn::genuine(&f, &ns).expect("synthesis");
    let from_expression = Dpdn::fully_connected(&f, &ns).expect("synthesis");
    let from_schematic = genuine.to_fully_connected().expect("transformation");

    for (label, gate) in [
        ("genuine schematic", &genuine),
        ("procedure 4.1 (expression)", &from_expression),
        ("procedure 4.2 (schematic)", &from_schematic),
    ] {
        let report = verify(gate).expect("verification");
        let _ = writeln!(
            out,
            "{label:>28}: devices = {}, internal nodes = {}, fully connected = {}, correct = {}",
            gate.device_count(),
            gate.internal_nodes().len(),
            report.is_fully_connected(),
            report.is_functionally_correct()
        );
    }
    let _ = writeln!(out, "\n{}", from_expression.to_spice("oai22_fc"));
    let _ = writeln!(
        out,
        "expected shape: both procedures yield 8 devices (same as the genuine network) \
         and a fully connected, functionally equivalent DPDN."
    );
    out
}

/// Experiment E5 (Fig. 6): the enhanced AND-NAND network — constant
/// evaluation depth and no early propagation.
pub fn fig6_enhanced() -> String {
    let mut out = String::new();
    heading(&mut out, "Fig. 6 — enhanced fully connected AND-NAND");
    let (f, ns) = parse_expr("A.B").expect("static formula");
    for (label, gate) in [
        (
            "fully connected",
            Dpdn::fully_connected(&f, &ns).expect("synthesis"),
        ),
        (
            "enhanced",
            Dpdn::fully_connected_enhanced(&f, &ns).expect("synthesis"),
        ),
    ] {
        let report = verify(&gate).expect("verification");
        let _ = writeln!(
            out,
            "{label:>16}: devices = {} ({} dummy), depth = {}..{} (constant: {}), \
             early propagation possible: {}",
            gate.device_count(),
            gate.dummy_device_count(),
            report.depth.min_depth(),
            report.depth.max_depth(),
            report.has_constant_depth(),
            !report.is_free_of_early_propagation()
        );
    }
    let _ = writeln!(
        out,
        "expected shape: the enhancement adds one pass gate (two dummy devices), makes \
         the evaluation depth a constant 2 and eliminates early propagation."
    );
    out
}

/// Experiment E6: per-cycle energy of the AND-NAND gate in CVSL (genuine
/// DPDN), SABL with a genuine DPDN and SABL with a fully connected DPDN.
pub fn cvsl_comparison() -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "CVSL vs SABL — per-cycle energy variation of the AND-NAND gate",
    );
    let (f, ns) = parse_expr("A.B").expect("static formula");
    let model = CapacitanceModel::default();
    let opts = EventOptions::default();
    // Visit every input event from every predecessor event so memory effects
    // across cycles are exercised.
    let mut sequence = Vec::new();
    for a in 0..4u64 {
        for b in 0..4u64 {
            sequence.push(a);
            sequence.push(b);
        }
    }

    let genuine = Dpdn::genuine(&f, &ns).expect("synthesis");
    let fc = Dpdn::fully_connected(&f, &ns).expect("synthesis");

    let cvsl = CvslCell::new(&genuine, &model);
    let sabl_genuine = SablCell::new(&genuine, &model);
    let sabl_fc = SablCell::new(&fc, &model);

    let rows: Vec<(&str, dpl_cells::CycleProfile)> = vec![
        (
            "DCVSL, genuine DPDN",
            characterize_cycles(cvsl.circuit(), cvsl.pins(), &sequence, &opts).expect("simulation"),
        ),
        (
            "SABL, genuine DPDN",
            characterize_cycles(
                sabl_genuine.circuit(),
                sabl_genuine.pins(),
                &sequence,
                &opts,
            )
            .expect("simulation"),
        ),
        (
            "SABL, fully connected DPDN",
            characterize_cycles(sabl_fc.circuit(), sabl_fc.pins(), &sequence, &opts)
                .expect("simulation"),
        ),
    ];
    let _ = writeln!(
        out,
        "{:>28} {:>12} {:>12} {:>10} {:>10}",
        "style", "E_min (fJ)", "E_max (fJ)", "NED", "NSD"
    );
    for (label, profile) in &rows {
        let energies = profile.energies();
        let _ = writeln!(
            out,
            "{label:>28} {:>12.3} {:>12.3} {:>10.4} {:>10.4}",
            profile.min_energy() * 1e15,
            profile.max_energy() * 1e15,
            metrics::normalized_energy_deviation(&energies),
            metrics::normalized_standard_deviation(&energies)
        );
    }
    let _ = writeln!(
        out,
        "expected shape: the styles with a genuine DPDN show a large energy spread \
         (the paper quotes up to ~50 % for CVSL); SABL with the fully connected DPDN \
         is (near) constant."
    );
    out
}

/// The historical default seed of the DPA/CPA experiments.
pub const DEFAULT_EXPERIMENT_SEED: u64 = 2005;

/// Experiment E7: end-to-end DPA on the PRESENT S-box datapath with insecure
/// and constant-power gate implementations, at the historical default seed.
pub fn dpa_experiment(num_traces: usize) -> String {
    dpa_experiment_seeded(num_traces, DEFAULT_EXPERIMENT_SEED)
}

/// [`dpa_experiment`] with a caller-chosen campaign seed (`repro dpa --seed`).
pub fn dpa_experiment_seeded(num_traces: usize, seed: u64) -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "DPA on the PRESENT S-box (key-mixing + S-box datapath)",
    );
    let netlist = synthesize_sbox_with_key().expect("synthesis");
    let capacitance = CapacitanceModel::default();
    let key = 0xAu8;
    let options = LeakageOptions {
        relative_noise: 0.02,
        seed,
    };
    let _ = writeln!(
        out,
        "netlist: {} gates, secret key nibble = {key:#X}, {num_traces} traces, 2 % noise, \
         seed = {seed}",
        netlist.gate_count()
    );
    let selection =
        |plaintext: u64, guess: u64| present_sbox((plaintext ^ guess) as u8).count_ones() >= 2;

    for model in [
        LeakageModel::HammingWeight,
        LeakageModel::GenuineSabl,
        LeakageModel::FullyConnectedSabl,
        LeakageModel::EnhancedSabl,
    ] {
        let table = GateEnergyTable::build(model, &capacitance).expect("energy table");
        let traces = simulate_traces_with_table(&netlist, &table, key, num_traces, &options);
        let dpa = dpa_attack(&traces, 16, selection).expect("attack");
        // Profiled CPA: the strongest first-order attacker, who knows the
        // per-gate energy table of the implementation style.  The 256
        // possible hypotheses are precomputed once, bitsliced.
        let cache = EnergyCache::new(&netlist, &table);
        let cpa = cpa_attack(&traces, 16, |plaintext, guess| {
            cache.energy(plaintext, guess as u8)
        })
        .expect("attack");
        let verdict = |guess: u64| {
            if guess == u64::from(key) {
                "KEY RECOVERED"
            } else {
                "attack failed"
            }
        };
        let _ = writeln!(
            out,
            "{:>32}: DPA best guess = {:#X} ({}), profiled CPA best guess = {:#X} ({}), \
             CPA corr(correct key) = {:.3}",
            model.label(),
            dpa.best_guess,
            verdict(dpa.best_guess),
            cpa.best_guess,
            verdict(cpa.best_guess),
            cpa.scores[key as usize]
        );
    }
    let _ = writeln!(
        out,
        "expected shape: the Hamming-weight and genuine-DPDN implementations leak the key \
         (at least to the profiled attacker); the fully connected and enhanced SABL \
         implementations do not leak to either attack."
    );
    out
}

/// Experiment E7b: profiled CPA only, across every leakage model — the
/// strongest first-order attacker of the paper's threat discussion
/// (`repro cpa [n] [--seed s]`).
pub fn cpa_experiment_seeded(num_traces: usize, seed: u64) -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Profiled CPA on the PRESENT S-box (key-mixing + S-box datapath)",
    );
    let netlist = synthesize_sbox_with_key().expect("synthesis");
    let capacitance = CapacitanceModel::default();
    let key = 0xAu8;
    let options = LeakageOptions {
        relative_noise: 0.02,
        seed,
    };
    let _ = writeln!(
        out,
        "netlist: {} gates, secret key nibble = {key:#X}, {num_traces} traces, 2 % noise, \
         seed = {seed}",
        netlist.gate_count()
    );
    for model in [
        LeakageModel::HammingWeight,
        LeakageModel::GenuineSabl,
        LeakageModel::FullyConnectedSabl,
        LeakageModel::EnhancedSabl,
    ] {
        let table = GateEnergyTable::build(model, &capacitance).expect("energy table");
        let traces = simulate_traces_with_table(&netlist, &table, key, num_traces, &options);
        let cache = EnergyCache::new(&netlist, &table);
        let cpa = cpa_attack(&traces, 16, |plaintext, guess| {
            cache.energy(plaintext, guess as u8)
        })
        .expect("attack");
        let verdict = if cpa.best_guess == u64::from(key) {
            "KEY RECOVERED"
        } else {
            "attack failed"
        };
        let _ = writeln!(
            out,
            "{:>32}: best guess = {:#X} ({verdict}), corr(correct key) = {:.3}, \
             distinguishing ratio = {:.2}",
            model.label(),
            cpa.best_guess,
            cpa.scores[key as usize],
            cpa.distinguishing_ratio()
        );
    }
    let _ = writeln!(
        out,
        "expected shape: only the Hamming-weight and genuine-DPDN implementations leak \
         to the profiled attacker."
    );
    out
}

/// Experiment E8: the full gate library built with the paper's method.
pub fn library_sweep() -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Gate library sweep — the method on arbitrary functions",
    );
    let library = GateLibrary::standard().expect("library synthesis");
    let model = CapacitanceModel::default();
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>14} {:>14}",
        "gate", "inputs", "genuine", "fc", "enhanced", "fc spread", "genuine spread"
    );
    for cell in library.cells() {
        let fc_profile =
            DischargeProfile::analyze(&cell.fully_connected, &model).expect("analysis");
        let genuine_profile = DischargeProfile::analyze(&cell.genuine, &model).expect("analysis");
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>10} {:>10} {:>10} {:>13.2}% {:>13.2}%",
            cell.kind.name(),
            cell.kind.input_count(),
            cell.genuine.device_count(),
            cell.fully_connected.device_count(),
            cell.enhanced.device_count(),
            100.0 * fc_profile.capacitance_spread(),
            100.0 * genuine_profile.capacitance_spread()
        );
    }
    let _ = writeln!(
        out,
        "expected shape: every fully connected cell has 0 % capacitance spread; genuine \
         cells with internal nodes do not.  Gate count of the fully connected cell equals \
         the genuine cell; the enhanced cell adds dummy devices."
    );
    let _ = writeln!(
        out,
        "library total: {} cells, {} devices across fully connected cells",
        library.len(),
        library.total_fully_connected_devices()
    );
    let _ = GateKind::all();
    out
}

/// Runs every experiment and concatenates the reports.
pub fn run_all(dpa_traces: usize) -> String {
    let mut out = String::new();
    out.push_str(&fig2_memory_effect());
    out.push_str(&fig3_transient());
    out.push_str(&fig4_capacitance());
    out.push_str(&fig5_oai22());
    out.push_str(&fig6_enhanced());
    out.push_str(&cvsl_comparison());
    out.push_str(&dpa_experiment(dpa_traces));
    out.push_str(&library_sweep());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reports_the_memory_effect() {
        let report = fig2_memory_effect();
        assert!(report.contains("fully connected = false"));
        assert!(report.contains("fully connected = true"));
        assert!(report.contains("floating internal nodes = [WT0]") || report.contains("floating"));
    }

    #[test]
    fn fig4_shows_constant_capacitance_for_fc() {
        let report = fig4_capacitance();
        assert!(report.contains("spread"));
        assert!(report.contains("0.00 %"));
    }

    #[test]
    fn fig5_preserves_device_count() {
        let report = fig5_oai22();
        assert!(report.contains("devices = 8"));
        assert!(report.contains(".subckt oai22_fc"));
    }

    #[test]
    fn fig6_reports_constant_depth() {
        let report = fig6_enhanced();
        assert!(report.contains("constant: true"));
        assert!(report.contains("early propagation possible: false"));
    }

    #[test]
    fn dpa_experiment_recovers_and_protects() {
        let report = dpa_experiment(200);
        assert!(report.contains("KEY RECOVERED"));
        assert!(report.contains("attack failed"));
        assert!(report.contains("seed = 2005"));
    }

    #[test]
    fn dpa_experiment_seed_is_threaded_through() {
        let report = dpa_experiment_seeded(150, 777);
        assert!(report.contains("seed = 777"));
        // Different seeds draw different noise but the same leakage story.
        assert!(report.contains("KEY RECOVERED"));
    }

    #[test]
    fn cpa_experiment_profiles_every_model() {
        let report = cpa_experiment_seeded(200, 11);
        assert!(report.contains("seed = 11"));
        assert!(report.contains("KEY RECOVERED"));
        assert!(report.contains("attack failed"));
        assert!(report.contains("distinguishing ratio"));
    }

    #[test]
    fn library_sweep_lists_every_gate() {
        let report = library_sweep();
        assert!(report.contains("OAI22"));
        assert!(report.contains("MAJ3"));
    }
}

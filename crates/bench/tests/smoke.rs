//! Smoke test of the repro harness: runs every experiment through
//! [`dpl_bench::run_all`] with a tiny trace budget, exercising the exact
//! code path of `cargo run -p dpl-bench --bin repro` in CI without the cost
//! of the full 2000-trace DPA run.

#[test]
fn run_all_emits_every_report_section() {
    let report = dpl_bench::run_all(40);
    for needle in [
        "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "CVSL", "DPA", "library",
    ] {
        assert!(
            report.contains(needle),
            "run_all report is missing the {needle} section:\n{report}"
        );
    }
}

#[test]
fn fig3_transient_reports_matching_waveforms() {
    let report = dpl_bench::fig3_transient();
    assert!(report.contains("supply current"), "report:\n{report}");
    assert!(
        report.contains("relative RMS difference"),
        "report:\n{report}"
    );
}

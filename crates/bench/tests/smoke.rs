//! Smoke test of the repro harness: runs every experiment through
//! [`dpl_bench::run_all`] with a tiny trace budget, exercising the exact
//! code path of `cargo run -p dpl-bench --bin repro` in CI without the cost
//! of the full 2000-trace DPA run.

#[test]
fn run_all_emits_every_report_section() {
    let report = dpl_bench::run_all(40);
    for needle in [
        "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "CVSL", "DPA", "library",
    ] {
        assert!(
            report.contains(needle),
            "run_all report is missing the {needle} section:\n{report}"
        );
    }
}

#[test]
fn perf_harness_smoke_run() {
    // The exact code path of `repro bench --quick`, scaled down further.
    let config = dpl_bench::PerfConfig {
        gen_traces: 30,
        attack_traces: 30,
        repeats: 1,
    };
    let report = dpl_bench::perf::run(&config);
    assert_eq!(report.rows.len(), 22);
    let json = report.to_json();
    for needle in [
        "\"bench\": \"dpa_pipeline\"",
        "simulate_traces_parallel",
        "dpa_attack_reference",
        "archive_capture",
        "dpa_attack_outofcore",
        "archive_fsck_scan",
        "salvage_read",
        "capture_sharded",
        "shard_merge",
        "trace_fold_gbps",
        "encoded_bytes_per_trace",
        "capture_dpa_baseline",
        "instrumentation_overhead",
        "tvla_streaming",
        "mtd_curve",
        "characterized_table_build",
        "bdd_equivalence_check",
        "energy_cache_bitsliced",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}

#[test]
fn fig3_transient_reports_matching_waveforms() {
    let report = dpl_bench::fig3_transient();
    assert!(report.contains("supply current"), "report:\n{report}");
    assert!(
        report.contains("relative RMS difference"),
        "report:\n{report}"
    );
}

//! Benchmarks of the exhaustive verification suite (full connectivity,
//! functional equivalence, depth, early propagation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpl_core::random::random_read_once_expr;
use dpl_core::{verify, Dpdn};

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verification");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for inputs in [2usize, 4, 6, 8] {
        let (expr, ns) = random_read_once_expr(0xC0FFEE, inputs);
        let gate = Dpdn::fully_connected(&expr, &ns).expect("synthesis");
        group.bench_with_input(BenchmarkId::new("full_suite", inputs), &inputs, |b, _| {
            b.iter(|| verify(&gate).expect("verification"))
        });
        group.bench_with_input(
            BenchmarkId::new("connectivity_only", inputs),
            &inputs,
            |b, _| b.iter(|| dpl_core::verify::connectivity_report(&gate).expect("verification")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);

//! Benchmarks of the DPDN construction procedures (paper §4) as a function
//! of gate width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpl_core::random::random_read_once_expr;
use dpl_core::Dpdn;
use dpl_logic::parse_expr;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for inputs in [2usize, 4, 6, 8, 12, 16] {
        let (expr, ns) = random_read_once_expr(0xD47E_2005, inputs);
        group.bench_with_input(BenchmarkId::new("genuine", inputs), &inputs, |b, _| {
            b.iter(|| Dpdn::genuine(&expr, &ns).expect("synthesis"))
        });
        group.bench_with_input(
            BenchmarkId::new("fully_connected", inputs),
            &inputs,
            |b, _| b.iter(|| Dpdn::fully_connected(&expr, &ns).expect("synthesis")),
        );
        group.bench_with_input(BenchmarkId::new("enhanced", inputs), &inputs, |b, _| {
            b.iter(|| Dpdn::fully_connected_enhanced(&expr, &ns).expect("synthesis"))
        });
    }
    group.finish();
}

fn bench_transformation(c: &mut Criterion) {
    let mut group = c.benchmark_group("transformation_4_2");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for formula in ["A.B", "(A+B).(C+D)", "A.B+C.D", "A.(B+C.D)"] {
        let (expr, ns) = parse_expr(formula).expect("static formula");
        let genuine = Dpdn::genuine(&expr, &ns).expect("synthesis");
        group.bench_with_input(BenchmarkId::from_parameter(formula), formula, |b, _| {
            b.iter(|| genuine.to_fully_connected().expect("transformation"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction, bench_transformation);
criterion_main!(benches);

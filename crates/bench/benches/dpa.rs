//! Benchmarks of the end-to-end side-channel experiment: trace generation
//! (sequential and parallel), the streaming key-recovery attacks against
//! their retained naive references, and bitsliced vs. scalar energy
//! evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpl_cells::CapacitanceModel;
use dpl_crypto::{
    predicted_energy, present_sbox, simulate_traces, simulate_traces_parallel,
    synthesize_sbox_with_key, EnergyCache, GateEnergyTable, LeakageModel, LeakageOptions,
};
use dpl_power::{cpa_attack, dpa_attack, reference};

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let netlist = synthesize_sbox_with_key().expect("synthesis");
    let cap = CapacitanceModel::default();
    let options = LeakageOptions::default();
    for model in [
        LeakageModel::HammingWeight,
        LeakageModel::FullyConnectedSabl,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.label()),
            &model,
            |b, &model| {
                b.iter(|| {
                    simulate_traces(&netlist, model, &cap, 0xA, 500, &options)
                        .expect("trace generation")
                })
            },
        );
    }
    group.bench_function("parallel/static CMOS (Hamming weight)", |b| {
        b.iter(|| {
            simulate_traces_parallel(
                &netlist,
                LeakageModel::HammingWeight,
                &cap,
                0xA,
                500,
                &options,
                None,
            )
            .expect("trace generation")
        })
    });
    group.finish();
}

fn bench_attacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("attacks");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let netlist = synthesize_sbox_with_key().expect("synthesis");
    let cap = CapacitanceModel::default();
    let options = LeakageOptions::default();
    let traces = simulate_traces(
        &netlist,
        LeakageModel::HammingWeight,
        &cap,
        0x7,
        2000,
        &options,
    )
    .expect("trace generation");
    let selection =
        |plaintext: u64, guess: u64| present_sbox((plaintext ^ guess) as u8).count_ones() >= 2;
    let model =
        |plaintext: u64, guess: u64| present_sbox((plaintext ^ guess) as u8).count_ones() as f64;

    group.bench_function("dpa_2000_traces", |b| {
        b.iter(|| dpa_attack(&traces, 16, selection).expect("attack"))
    });
    group.bench_function("dpa_2000_traces_reference", |b| {
        b.iter(|| reference::dpa_attack(&traces, 16, selection).expect("attack"))
    });
    group.bench_function("cpa_2000_traces", |b| {
        b.iter(|| cpa_attack(&traces, 16, model).expect("attack"))
    });
    group.bench_function("cpa_2000_traces_reference", |b| {
        b.iter(|| reference::cpa_attack(&traces, 16, model).expect("attack"))
    });
    group.finish();
}

fn bench_energy_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("energy_evaluation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let netlist = synthesize_sbox_with_key().expect("synthesis");
    let cap = CapacitanceModel::default();
    let table = GateEnergyTable::build(LeakageModel::GenuineSabl, &cap).expect("energy table");

    group.bench_function("bitsliced_256_hypotheses", |b| {
        b.iter(|| EnergyCache::new(&netlist, &table))
    });
    group.bench_function("scalar_256_hypotheses", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for plaintext in 0..16u64 {
                for guess in 0..16u8 {
                    acc += predicted_energy(&netlist, &table, plaintext, guess);
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_attacks,
    bench_energy_evaluation
);
criterion_main!(benches);

//! Benchmarks of the end-to-end side-channel experiment: trace generation
//! and key-recovery attacks on the PRESENT S-box datapath.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpl_cells::CapacitanceModel;
use dpl_crypto::{
    present_sbox, simulate_traces, synthesize_sbox_with_key, LeakageModel, LeakageOptions,
};
use dpl_power::{cpa_attack, dpa_attack};

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let netlist = synthesize_sbox_with_key().expect("synthesis");
    let cap = CapacitanceModel::default();
    let options = LeakageOptions::default();
    for model in [
        LeakageModel::HammingWeight,
        LeakageModel::FullyConnectedSabl,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.label()),
            &model,
            |b, &model| {
                b.iter(|| {
                    simulate_traces(&netlist, model, &cap, 0xA, 500, &options)
                        .expect("trace generation")
                })
            },
        );
    }
    group.finish();
}

fn bench_attacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("attacks");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let netlist = synthesize_sbox_with_key().expect("synthesis");
    let cap = CapacitanceModel::default();
    let options = LeakageOptions::default();
    let traces = simulate_traces(
        &netlist,
        LeakageModel::HammingWeight,
        &cap,
        0x7,
        2000,
        &options,
    )
    .expect("trace generation");

    group.bench_function("dpa_2000_traces", |b| {
        b.iter(|| {
            dpa_attack(&traces, 16, |plaintext, guess| {
                present_sbox((plaintext ^ guess) as u8).count_ones() >= 2
            })
            .expect("attack")
        })
    });
    group.bench_function("cpa_2000_traces", |b| {
        b.iter(|| {
            cpa_attack(&traces, 16, |plaintext, guess| {
                present_sbox((plaintext ^ guess) as u8).count_ones() as f64
            })
            .expect("attack")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trace_generation, bench_attacks);
criterion_main!(benches);

//! Benchmarks of the simulation substrate: charge-based discharge analysis
//! (Fig. 4) and the switch-RC transient solver (Fig. 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpl_cells::{simulate_event, CapacitanceModel, DischargeProfile, EventOptions, SablCell};
use dpl_core::Dpdn;
use dpl_logic::parse_expr;

fn bench_discharge_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("discharge_profile");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let model = CapacitanceModel::default();
    for formula in ["A.B", "(A+B).(C+D)", "A.B+A.C+B.C"] {
        let (expr, ns) = parse_expr(formula).expect("static formula");
        let gate = Dpdn::fully_connected(&expr, &ns).expect("synthesis");
        group.bench_with_input(BenchmarkId::from_parameter(formula), formula, |b, _| {
            b.iter(|| DischargeProfile::analyze(&gate, &model).expect("analysis"))
        });
    }
    group.finish();
}

fn bench_transient_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_event");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let model = CapacitanceModel::default();
    let opts = EventOptions::default();
    for formula in ["A.B", "(A+B).(C+D)"] {
        let (expr, ns) = parse_expr(formula).expect("static formula");
        let gate = Dpdn::fully_connected(&expr, &ns).expect("synthesis");
        let cell = SablCell::new(&gate, &model);
        group.bench_with_input(BenchmarkId::from_parameter(formula), formula, |b, _| {
            b.iter(|| {
                simulate_event(cell.circuit(), cell.pins(), (1 << ns.len()) - 1, &opts)
                    .expect("simulation")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_discharge_profile, bench_transient_event);
criterion_main!(benches);

use std::collections::BTreeSet;
use std::fmt;

use dpl_logic::{Literal, TruthTable, Var};

use crate::error::NetlistError;
use crate::unionfind::UnionFind;
use crate::Result;

/// Identifier of a node (electrical net) inside a [`SwitchNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a switch (transistor) inside a [`SwitchNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(u32);

impl SwitchId {
    /// The dense index of the switch.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// The structural role of a node inside a pull-down network.
///
/// The paper distinguishes *external* nodes (the module output nodes X and Y
/// and the common node Z) from *internal* nodes, whose parasitic capacitance
/// causes the memory effect when they are left floating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// An external node of the network (X, Y or Z in the paper's figures).
    Terminal,
    /// An internal node of the network.
    Internal,
}

#[derive(Debug, Clone, PartialEq)]
struct NodeInfo {
    name: String,
    role: NodeRole,
}

/// A single NMOS switch: it conducts between its two terminals when its gate
/// literal evaluates to `1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Switch {
    /// The literal driving the transistor gate.
    pub gate: Literal,
    /// First channel terminal.
    pub a: NodeId,
    /// Second channel terminal.
    pub b: NodeId,
    /// Channel width in arbitrary units (used by the capacitance model).
    pub width: f64,
    /// `true` when this device is half of an inserted pass gate (a dummy
    /// device added by the enhancement step of §5 rather than a functional
    /// device of the pull-down network).
    pub is_dummy: bool,
}

impl Switch {
    /// The node on the other side of the switch, if `node` is one of its
    /// terminals.
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Evaluates whether the switch conducts under a bit-packed assignment.
    pub fn conducts(&self, assignment: u64) -> bool {
        self.gate.eval_bits(assignment)
    }
}

/// A multigraph of nodes and literal-controlled switches.
///
/// This is the representation on which the paper's design methods operate:
/// differential pull-down networks are switch networks with three designated
/// terminals (X, Y, Z) whose devices are gated by the true and false rails
/// of the gate inputs.
///
/// ```
/// use dpl_logic::Var;
/// use dpl_netlist::{NodeRole, SwitchNetwork};
///
/// let mut net = SwitchNetwork::new();
/// let x = net.add_node("X", NodeRole::Terminal);
/// let z = net.add_node("Z", NodeRole::Terminal);
/// let a = Var::new(0);
/// net.add_switch(a.positive(), x, z);
/// assert!(net.connected(x, z, 0b1));
/// assert!(!net.connected(x, z, 0b0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwitchNetwork {
    nodes: Vec<NodeInfo>,
    switches: Vec<Switch>,
}

impl SwitchNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given name and role, returning its identifier.
    pub fn add_node<S: Into<String>>(&mut self, name: S, role: NodeRole) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeInfo {
            name: name.into(),
            role,
        });
        id
    }

    /// Adds a unit-width functional switch between `a` and `b`.
    pub fn add_switch(&mut self, gate: Literal, a: NodeId, b: NodeId) -> SwitchId {
        self.add_switch_with(gate, a, b, 1.0, false)
    }

    /// Adds a dummy (pass-gate half) switch between `a` and `b`.
    pub fn add_dummy_switch(&mut self, gate: Literal, a: NodeId, b: NodeId) -> SwitchId {
        self.add_switch_with(gate, a, b, 1.0, true)
    }

    /// Adds a switch with explicit width and dummy flag.
    ///
    /// # Panics
    ///
    /// Panics if either node identifier does not belong to this network.
    pub fn add_switch_with(
        &mut self,
        gate: Literal,
        a: NodeId,
        b: NodeId,
        width: f64,
        is_dummy: bool,
    ) -> SwitchId {
        assert!(a.index() < self.nodes.len(), "node {a} out of range");
        assert!(b.index() < self.nodes.len(), "node {b} out of range");
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(Switch {
            gate,
            a,
            b,
            width,
            is_dummy,
        });
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of switches (transistors).
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of functional (non-dummy) switches.
    pub fn functional_switch_count(&self) -> usize {
        self.switches.iter().filter(|s| !s.is_dummy).count()
    }

    /// Number of dummy (pass-gate) switches.
    pub fn dummy_switch_count(&self) -> usize {
        self.switches.iter().filter(|s| s.is_dummy).count()
    }

    /// Iterates over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over `(SwitchId, &Switch)` pairs.
    pub fn switches(&self) -> impl Iterator<Item = (SwitchId, &Switch)> + '_ {
        self.switches
            .iter()
            .enumerate()
            .map(|(i, s)| (SwitchId(i as u32), s))
    }

    /// Returns the switch with the given identifier.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSwitch`] when out of range.
    pub fn switch(&self, id: SwitchId) -> Result<&Switch> {
        self.switches
            .get(id.index())
            .ok_or(NetlistError::UnknownSwitch { index: id.index() })
    }

    /// Returns the name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this network.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Returns the role of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this network.
    pub fn node_role(&self, id: NodeId) -> NodeRole {
        self.nodes[id.index()].role
    }

    /// Changes the role of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this network.
    pub fn set_node_role(&mut self, id: NodeId, role: NodeRole) {
        self.nodes[id.index()].role = role;
    }

    /// Looks up a node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// All internal (non-terminal) nodes.
    pub fn internal_nodes(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| self.node_role(n) == NodeRole::Internal)
            .collect()
    }

    /// All terminal nodes.
    pub fn terminal_nodes(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| self.node_role(n) == NodeRole::Terminal)
            .collect()
    }

    /// Identifiers of the switches incident to `node`.
    pub fn switches_at(&self, node: NodeId) -> Vec<SwitchId> {
        self.switches()
            .filter(|(_, s)| s.a == node || s.b == node)
            .map(|(id, _)| id)
            .collect()
    }

    /// The degree (number of incident switch terminals) of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.switches
            .iter()
            .map(|s| usize::from(s.a == node) + usize::from(s.b == node))
            .sum()
    }

    /// The set of input variables driving switch gates in this network.
    pub fn support(&self) -> BTreeSet<Var> {
        self.switches.iter().map(|s| s.gate.var()).collect()
    }

    /// The number of distinct input variables.
    pub fn input_count(&self) -> usize {
        self.support().len()
    }

    /// Computes the connectivity of the network under a bit-packed input
    /// assignment: nodes joined by conducting switches end up in the same
    /// union-find set.
    pub fn connectivity(&self, assignment: u64) -> UnionFind {
        let mut uf = UnionFind::new(self.nodes.len());
        for s in &self.switches {
            if s.conducts(assignment) {
                uf.union(s.a.index(), s.b.index());
            }
        }
        uf
    }

    /// `true` when `a` and `b` are connected by conducting switches under
    /// the given assignment.
    pub fn connected(&self, a: NodeId, b: NodeId, assignment: u64) -> bool {
        self.connectivity(assignment)
            .connected(a.index(), b.index())
    }

    /// Returns, for every node, whether it is connected to at least one of
    /// the `targets` under the given assignment.
    pub fn connected_to_any(&self, targets: &[NodeId], assignment: u64) -> Vec<bool> {
        let mut uf = self.connectivity(assignment);
        let target_roots: Vec<usize> = targets.iter().map(|t| uf.find(t.index())).collect();
        self.nodes()
            .map(|n| {
                let root = uf.find(n.index());
                target_roots.contains(&root)
            })
            .collect()
    }

    /// Extracts the conduction function between two nodes as a truth table
    /// over `num_vars` input variables: row `i` is `1` when the nodes are
    /// connected under assignment `i`.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_vars` exceeds the dense truth-table limit or
    /// is smaller than the largest variable index used in the network.
    pub fn conduction_table(&self, a: NodeId, b: NodeId, num_vars: usize) -> Result<TruthTable> {
        if let Some(max) = self.support().into_iter().next_back() {
            if max.index() >= num_vars {
                return Err(NetlistError::ParseError {
                    line: 0,
                    message: format!(
                        "network uses variable {max} but only {num_vars} inputs were declared"
                    ),
                });
            }
        }
        let tt = TruthTable::from_fn(num_vars, |assignment| self.connected(a, b, assignment))?;
        Ok(tt)
    }

    /// Basic structural validation: every switch references valid nodes and
    /// has a positive width, and the network has at least one device.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        if self.switches.is_empty() {
            return Err(NetlistError::EmptyNetwork);
        }
        for (i, s) in self.switches.iter().enumerate() {
            if s.a.index() >= self.nodes.len() {
                return Err(NetlistError::UnknownNode { index: s.a.index() });
            }
            if s.b.index() >= self.nodes.len() {
                return Err(NetlistError::UnknownNode { index: s.b.index() });
            }
            if s.a == s.b {
                return Err(NetlistError::DegenerateTerminals);
            }
            if s.width.is_nan() || s.width <= 0.0 {
                return Err(NetlistError::InvalidWidth { switch: i });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpl_logic::Namespace;

    fn two_input_series() -> (SwitchNetwork, NodeId, NodeId, NodeId) {
        // X --A-- W --B-- Z
        let mut net = SwitchNetwork::new();
        let x = net.add_node("X", NodeRole::Terminal);
        let w = net.add_node("W", NodeRole::Internal);
        let z = net.add_node("Z", NodeRole::Terminal);
        let ns = Namespace::with_names(["A", "B"]);
        net.add_switch(ns.get("A").unwrap().positive(), x, w);
        net.add_switch(ns.get("B").unwrap().positive(), w, z);
        (net, x, w, z)
    }

    #[test]
    fn series_connectivity_requires_both_inputs() {
        let (net, x, _, z) = two_input_series();
        assert!(net.connected(x, z, 0b11));
        assert!(!net.connected(x, z, 0b01));
        assert!(!net.connected(x, z, 0b10));
        assert!(!net.connected(x, z, 0b00));
    }

    #[test]
    fn conduction_table_matches_and() {
        let (net, x, _, z) = two_input_series();
        let tt = net.conduction_table(x, z, 2).unwrap();
        assert_eq!(tt.count_ones(), 1);
        assert!(tt.value(0b11));
    }

    #[test]
    fn connected_to_any_reports_internal_nodes() {
        let (net, x, w, z) = two_input_series();
        // With only A on, W is connected to X but not Z.
        let reach = net.connected_to_any(&[x], 0b01);
        assert!(reach[w.index()]);
        assert!(!reach[z.index()]);
        // With nothing on, W is isolated.
        let reach = net.connected_to_any(&[x, z], 0b00);
        assert!(!reach[w.index()]);
    }

    #[test]
    fn roles_and_lookup() {
        let (mut net, x, w, _) = two_input_series();
        assert_eq!(net.node_role(x), NodeRole::Terminal);
        assert_eq!(net.node_role(w), NodeRole::Internal);
        assert_eq!(net.internal_nodes(), vec![w]);
        assert_eq!(net.terminal_nodes().len(), 2);
        assert_eq!(net.find_node("W"), Some(w));
        assert_eq!(net.find_node("nope"), None);
        net.set_node_role(w, NodeRole::Terminal);
        assert_eq!(net.node_role(w), NodeRole::Terminal);
        assert_eq!(net.node_name(w), "W");
    }

    #[test]
    fn degree_and_switches_at() {
        let (net, x, w, _) = two_input_series();
        assert_eq!(net.degree(w), 2);
        assert_eq!(net.degree(x), 1);
        assert_eq!(net.switches_at(w).len(), 2);
        assert_eq!(net.switch_count(), 2);
        assert_eq!(net.node_count(), 3);
    }

    #[test]
    fn support_and_input_count() {
        let (net, _, _, _) = two_input_series();
        assert_eq!(net.input_count(), 2);
        let vars: Vec<usize> = net.support().into_iter().map(|v| v.index()).collect();
        assert_eq!(vars, vec![0, 1]);
    }

    #[test]
    fn validation_catches_problems() {
        let net = SwitchNetwork::new();
        assert_eq!(net.validate(), Err(NetlistError::EmptyNetwork));

        let (net, _, _, _) = two_input_series();
        assert!(net.validate().is_ok());

        let mut bad = SwitchNetwork::new();
        let x = bad.add_node("X", NodeRole::Terminal);
        bad.add_switch(Var::new(0).positive(), x, x);
        assert_eq!(bad.validate(), Err(NetlistError::DegenerateTerminals));
    }

    #[test]
    fn dummy_switches_are_counted_separately() {
        let (mut net, x, w, _) = two_input_series();
        assert_eq!(net.dummy_switch_count(), 0);
        net.add_dummy_switch(Var::new(0).negative(), x, w);
        assert_eq!(net.dummy_switch_count(), 1);
        assert_eq!(net.functional_switch_count(), 2);
        assert_eq!(net.switch_count(), 3);
    }

    #[test]
    fn switch_other_and_lookup_errors() {
        let (net, x, w, _) = two_input_series();
        let (id, s) = net.switches().next().unwrap();
        assert_eq!(s.other(x), Some(w));
        assert_eq!(s.other(w), Some(x));
        assert_eq!(s.other(NodeId(99)), None);
        assert!(net.switch(id).is_ok());
        assert!(matches!(
            net.switch(SwitchId(42)),
            Err(NetlistError::UnknownSwitch { index: 42 })
        ));
    }

    #[test]
    fn conduction_table_arity_check() {
        let (net, x, _, z) = two_input_series();
        assert!(net.conduction_table(x, z, 1).is_err());
        assert!(net.conduction_table(x, z, 4).is_ok());
    }
}

/// A small union-find (disjoint set) structure used for connectivity
/// analysis of switch networks under a given input assignment.
///
/// ```
/// use dpl_netlist::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// uf.union(1, 2);
/// assert!(uf.connected(0, 3));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates a union-find over `n` singleton elements.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x` (with path compression).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// `true` if `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn set_count(&mut self) -> usize {
        let n = self.len();
        let mut roots = std::collections::HashSet::new();
        for i in 0..n {
            let r = self.find(i);
            roots.insert(r);
        }
        roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disconnected() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn union_merges_sets() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(3, 4));
        assert_eq!(uf.set_count(), 3);
        uf.union(1, 3);
        assert!(uf.connected(0, 4));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn long_chains_compress() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert!(uf.connected(0, n - 1));
        assert_eq!(uf.set_count(), 1);
    }
}

use crate::network::{NodeId, SwitchId, SwitchNetwork};

/// A simple path through a [`SwitchNetwork`]: a sequence of switches joining
/// a start node to an end node without repeating nodes.
///
/// Path enumeration is used by the verification module of `dpl-core` to
/// measure the *evaluation depth* of a pull-down network ("the number of
/// transistors in series between the nodes X or Y to the common ground node
/// Z") and to reason about early propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    nodes: Vec<NodeId>,
    switches: Vec<SwitchId>,
}

impl Path {
    /// The nodes visited by the path, in order (including both endpoints).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The switches traversed by the path, in order.
    pub fn switches(&self) -> &[SwitchId] {
        &self.switches
    }

    /// Number of switches on the path (the path's evaluation depth).
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// `true` for a zero-length path (start equals end).
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }

    /// `true` when every switch on the path conducts under the assignment.
    pub fn conducts(&self, network: &SwitchNetwork, assignment: u64) -> bool {
        self.switches.iter().all(|&id| {
            network
                .switch(id)
                .map(|s| s.conducts(assignment))
                .unwrap_or(false)
        })
    }
}

/// Enumerates every simple path between `from` and `to`.
///
/// The networks produced by the paper's construction are small (a handful of
/// transistors per gate), so exhaustive enumeration is cheap; the function is
/// nevertheless written iteratively to avoid deep recursion on adversarial
/// inputs.
pub fn enumerate_paths(network: &SwitchNetwork, from: NodeId, to: NodeId) -> Vec<Path> {
    let mut result = Vec::new();
    if from == to {
        return result;
    }

    // Iterative DFS over (node, next-switch-index-to-try) frames.
    let mut node_stack: Vec<NodeId> = vec![from];
    let mut switch_stack: Vec<SwitchId> = Vec::new();
    let mut iter_stack: Vec<Vec<SwitchId>> = vec![network.switches_at(from)];
    let mut cursor_stack: Vec<usize> = vec![0];
    let mut on_path = vec![false; network.node_count()];
    on_path[from.index()] = true;

    while let Some(&current) = node_stack.last() {
        let depth = node_stack.len() - 1;
        let cursor = cursor_stack[depth];
        let candidates = &iter_stack[depth];
        if cursor >= candidates.len() {
            // Backtrack.
            on_path[current.index()] = false;
            node_stack.pop();
            iter_stack.pop();
            cursor_stack.pop();
            switch_stack.pop();
            continue;
        }
        cursor_stack[depth] += 1;
        let switch_id = candidates[cursor];
        let switch = network
            .switch(switch_id)
            .expect("switches_at only returns valid ids");
        let Some(next) = switch.other(current) else {
            continue;
        };
        if next == to {
            let mut nodes = node_stack.clone();
            nodes.push(to);
            let mut switches = switch_stack.clone();
            switches.push(switch_id);
            result.push(Path { nodes, switches });
            continue;
        }
        if on_path[next.index()] {
            continue;
        }
        on_path[next.index()] = true;
        node_stack.push(next);
        switch_stack.push(switch_id);
        iter_stack.push(network.switches_at(next));
        cursor_stack.push(0);
    }

    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NodeRole;
    use dpl_logic::Var;

    fn bridge_network() -> (SwitchNetwork, NodeId, NodeId) {
        // X --a-- m --b-- Z
        //    \-c-- n --d--/
        //        m --e-- n   (bridge)
        let mut net = SwitchNetwork::new();
        let x = net.add_node("X", NodeRole::Terminal);
        let m = net.add_node("m", NodeRole::Internal);
        let n = net.add_node("n", NodeRole::Internal);
        let z = net.add_node("Z", NodeRole::Terminal);
        let v = |i: usize| Var::new(i).positive();
        net.add_switch(v(0), x, m);
        net.add_switch(v(1), m, z);
        net.add_switch(v(2), x, n);
        net.add_switch(v(3), n, z);
        net.add_switch(v(4), m, n);
        (net, x, z)
    }

    #[test]
    fn series_network_has_single_path() {
        let mut net = SwitchNetwork::new();
        let x = net.add_node("X", NodeRole::Terminal);
        let w = net.add_node("W", NodeRole::Internal);
        let z = net.add_node("Z", NodeRole::Terminal);
        net.add_switch(Var::new(0).positive(), x, w);
        net.add_switch(Var::new(1).positive(), w, z);
        let paths = enumerate_paths(&net, x, z);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2);
        assert_eq!(paths[0].nodes().first(), Some(&x));
        assert_eq!(paths[0].nodes().last(), Some(&z));
    }

    #[test]
    fn bridge_network_has_four_paths() {
        let (net, x, z) = bridge_network();
        let paths = enumerate_paths(&net, x, z);
        // X-m-Z, X-n-Z, X-m-n-Z, X-n-m-Z
        assert_eq!(paths.len(), 4);
        let mut lengths: Vec<usize> = paths.iter().map(Path::len).collect();
        lengths.sort_unstable();
        assert_eq!(lengths, vec![2, 2, 3, 3]);
    }

    #[test]
    fn path_conduction_respects_assignment() {
        let (net, x, z) = bridge_network();
        let paths = enumerate_paths(&net, x, z);
        let direct = paths.iter().find(|p| p.len() == 2).unwrap();
        // The X-m-Z path needs variables 0 and 1.
        let needs: Vec<usize> = direct
            .switches()
            .iter()
            .map(|&id| net.switch(id).unwrap().gate.var().index())
            .collect();
        let assignment = needs.iter().fold(0u64, |acc, &i| acc | (1 << i));
        assert!(direct.conducts(&net, assignment));
        assert!(!direct.conducts(&net, 0));
    }

    #[test]
    fn identical_endpoints_yield_no_paths() {
        let (net, x, _) = bridge_network();
        assert!(enumerate_paths(&net, x, x).is_empty());
    }

    #[test]
    fn disconnected_nodes_yield_no_paths() {
        let mut net = SwitchNetwork::new();
        let x = net.add_node("X", NodeRole::Terminal);
        let z = net.add_node("Z", NodeRole::Terminal);
        let iso = net.add_node("iso", NodeRole::Internal);
        net.add_switch(Var::new(0).positive(), x, z);
        assert!(enumerate_paths(&net, x, iso).is_empty());
    }
}

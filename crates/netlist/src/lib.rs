//! # dpl-netlist
//!
//! Transistor-level switch-network substrate for differential pull-down
//! network (DPDN) synthesis.
//!
//! The paper's algorithms manipulate *networks of NMOS switches* whose gates
//! are driven by input literals.  This crate provides:
//!
//! * [`SwitchNetwork`] — a multigraph of nodes and literal-controlled
//!   switches, with connectivity queries (union-find), conduction-function
//!   extraction, and simple-path enumeration,
//! * [`SpTree`] — series–parallel transistor trees, the traditional way a
//!   Boolean expression is translated into a pull-down network ("an AND
//!   operation is represented by a series of switches, an OR operation by a
//!   parallel connection"), including SP *recognition* of an existing
//!   network, which the schematic-transformation procedure of §4.2 needs,
//! * a small SPICE-like netlist writer/reader ([`spice`]) so generated
//!   networks can be inspected or exchanged with external tools.
//!
//! ```
//! use dpl_logic::parse_expr;
//! use dpl_netlist::SpTree;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (f, ns) = parse_expr("A.B + C")?;
//! let tree = SpTree::from_expr(&f)?;
//! assert_eq!(tree.device_count(), 3);
//! assert!(tree.eval(&[true, true, false]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod network;
mod paths;
mod sp;
pub mod spice;
mod unionfind;

pub use error::NetlistError;
pub use network::{NodeId, NodeRole, Switch, SwitchId, SwitchNetwork};
pub use paths::{enumerate_paths, Path};
pub use sp::SpTree;
pub use unionfind::UnionFind;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NetlistError>;

use dpl_logic::{decompose, Decomposition, Expr, Literal};

use crate::error::NetlistError;
use crate::network::{NodeId, NodeRole, SwitchNetwork};
use crate::Result;

/// A series–parallel transistor tree.
///
/// This is the traditional translation of a Boolean expression into a
/// pull-down network (paper §4.1, step 3: "an AND operation is represented
/// by a series of switches, an OR operation by a parallel connection of
/// switches").  Genuine differential pull-down networks are pairs of dual SP
/// trees; the schematic-transformation procedure of §4.2 starts from such a
/// pair, so this type also provides *recognition* of an SP structure inside
/// an existing [`SwitchNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpTree {
    /// A single transistor whose gate is driven by the literal.
    Device(Literal),
    /// Sub-networks connected in series (top to bottom).
    Series(Vec<SpTree>),
    /// Sub-networks connected in parallel.
    Parallel(Vec<SpTree>),
}

impl SpTree {
    /// Builds the SP tree of an expression (its genuine pull-down network).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ConstantExpression`] for constant
    /// expressions, which have no transistor network.
    pub fn from_expr(expr: &Expr) -> Result<Self> {
        let nnf = expr.to_nnf().simplify();
        Self::from_nnf(&nnf)
    }

    fn from_nnf(expr: &Expr) -> Result<Self> {
        match decompose(expr)? {
            Decomposition::Literal(l) => Ok(SpTree::Device(l)),
            Decomposition::And(x, y) => {
                Ok(SpTree::Series(vec![Self::from_nnf(&x)?, Self::from_nnf(&y)?]).flattened())
            }
            Decomposition::Or(x, y) => {
                Ok(SpTree::Parallel(vec![Self::from_nnf(&x)?, Self::from_nnf(&y)?]).flattened())
            }
        }
    }

    /// Merges nested series-of-series and parallel-of-parallel nodes.
    #[must_use]
    pub fn flattened(&self) -> SpTree {
        match self {
            SpTree::Device(l) => SpTree::Device(*l),
            SpTree::Series(children) => {
                let mut out = Vec::new();
                for c in children {
                    match c.flattened() {
                        SpTree::Series(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                if out.len() == 1 {
                    out.pop().expect("length checked")
                } else {
                    SpTree::Series(out)
                }
            }
            SpTree::Parallel(children) => {
                let mut out = Vec::new();
                for c in children {
                    match c.flattened() {
                        SpTree::Parallel(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                if out.len() == 1 {
                    out.pop().expect("length checked")
                } else {
                    SpTree::Parallel(out)
                }
            }
        }
    }

    /// The dual tree: series and parallel connections are swapped and every
    /// literal is complemented.  The dual of a genuine pull-down network for
    /// `f` is the genuine pull-down network for `!f` — the false branch of a
    /// genuine DPDN.
    #[must_use]
    pub fn dual(&self) -> SpTree {
        match self {
            SpTree::Device(l) => SpTree::Device(l.complement()),
            SpTree::Series(children) => {
                SpTree::Parallel(children.iter().map(SpTree::dual).collect())
            }
            SpTree::Parallel(children) => {
                SpTree::Series(children.iter().map(SpTree::dual).collect())
            }
        }
    }

    /// Evaluates whether the tree conducts for the given input assignment.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        match self {
            SpTree::Device(l) => l.eval(inputs),
            SpTree::Series(children) => children.iter().all(|c| c.eval(inputs)),
            SpTree::Parallel(children) => children.iter().any(|c| c.eval(inputs)),
        }
    }

    /// Evaluates the tree under a bit-packed assignment.
    pub fn eval_bits(&self, assignment: u64) -> bool {
        match self {
            SpTree::Device(l) => l.eval_bits(assignment),
            SpTree::Series(children) => children.iter().all(|c| c.eval_bits(assignment)),
            SpTree::Parallel(children) => children.iter().any(|c| c.eval_bits(assignment)),
        }
    }

    /// Number of transistors in the tree.
    pub fn device_count(&self) -> usize {
        match self {
            SpTree::Device(_) => 1,
            SpTree::Series(children) | SpTree::Parallel(children) => {
                children.iter().map(SpTree::device_count).sum()
            }
        }
    }

    /// The literals of all devices in the tree, in left-to-right order.
    pub fn literals(&self) -> Vec<Literal> {
        let mut out = Vec::new();
        self.collect_literals(&mut out);
        out
    }

    fn collect_literals(&self, out: &mut Vec<Literal>) {
        match self {
            SpTree::Device(l) => out.push(*l),
            SpTree::Series(children) | SpTree::Parallel(children) => {
                for c in children {
                    c.collect_literals(out);
                }
            }
        }
    }

    /// Longest conduction path, in transistors, through the tree.
    pub fn max_depth(&self) -> usize {
        match self {
            SpTree::Device(_) => 1,
            SpTree::Series(children) => children.iter().map(SpTree::max_depth).sum(),
            SpTree::Parallel(children) => children.iter().map(SpTree::max_depth).max().unwrap_or(0),
        }
    }

    /// Shortest conduction path, in transistors, through the tree.
    pub fn min_depth(&self) -> usize {
        match self {
            SpTree::Device(_) => 1,
            SpTree::Series(children) => children.iter().map(SpTree::min_depth).sum(),
            SpTree::Parallel(children) => children.iter().map(SpTree::min_depth).min().unwrap_or(0),
        }
    }

    /// Converts the tree back into a Boolean expression.
    pub fn to_expr(&self) -> Expr {
        match self {
            SpTree::Device(l) => Expr::lit(*l),
            SpTree::Series(children) => Expr::and(children.iter().map(SpTree::to_expr)),
            SpTree::Parallel(children) => Expr::or(children.iter().map(SpTree::to_expr)),
        }
    }

    /// Instantiates the tree as switches inside `network` between the `top`
    /// and `bottom` nodes.  Internal nodes are created as needed and named
    /// `"{prefix}{counter}"`.
    pub fn instantiate(
        &self,
        network: &mut SwitchNetwork,
        top: NodeId,
        bottom: NodeId,
        prefix: &str,
    ) -> Vec<NodeId> {
        let mut created = Vec::new();
        let mut counter = 0usize;
        self.instantiate_inner(network, top, bottom, prefix, &mut counter, &mut created);
        created
    }

    fn instantiate_inner(
        &self,
        network: &mut SwitchNetwork,
        top: NodeId,
        bottom: NodeId,
        prefix: &str,
        counter: &mut usize,
        created: &mut Vec<NodeId>,
    ) {
        match self {
            SpTree::Device(l) => {
                network.add_switch(*l, top, bottom);
            }
            SpTree::Series(children) => {
                let mut current_top = top;
                for (i, child) in children.iter().enumerate() {
                    let next = if i + 1 == children.len() {
                        bottom
                    } else {
                        let name = format!("{prefix}{counter}");
                        *counter += 1;
                        let id = network.add_node(name, NodeRole::Internal);
                        created.push(id);
                        id
                    };
                    child.instantiate_inner(network, current_top, next, prefix, counter, created);
                    current_top = next;
                }
            }
            SpTree::Parallel(children) => {
                for child in children {
                    child.instantiate_inner(network, top, bottom, prefix, counter, created);
                }
            }
        }
    }

    /// Recognises the series–parallel structure of `network` between two
    /// terminal nodes.
    ///
    /// The recognition runs the classic reduction algorithm: parallel edges
    /// between the same node pair are merged into a [`SpTree::Parallel`]
    /// node, and internal nodes of degree two are eliminated by merging
    /// their two edges into a [`SpTree::Series`] node.  If the graph reduces
    /// to a single edge between `from` and `to`, that edge's tree is the
    /// answer; otherwise the network is not series-parallel (which is the
    /// case for fully connected DPDNs — they intentionally share devices
    /// between branches).
    ///
    /// # Errors
    ///
    /// * [`NetlistError::EmptyNetwork`] if the network has no devices.
    /// * [`NetlistError::DegenerateTerminals`] if `from == to`.
    /// * [`NetlistError::NotSeriesParallel`] if reduction gets stuck.
    pub fn extract(network: &SwitchNetwork, from: NodeId, to: NodeId) -> Result<Self> {
        if network.switch_count() == 0 {
            return Err(NetlistError::EmptyNetwork);
        }
        if from == to {
            return Err(NetlistError::DegenerateTerminals);
        }

        #[derive(Debug, Clone)]
        struct Edge {
            a: usize,
            b: usize,
            tree: SpTree,
        }

        let mut edges: Vec<Edge> = network
            .switches()
            .map(|(_, s)| Edge {
                a: s.a.index(),
                b: s.b.index(),
                tree: SpTree::Device(s.gate),
            })
            .collect();

        let terminals = [from.index(), to.index()];

        loop {
            if edges.is_empty() {
                return Err(NetlistError::NotSeriesParallel {
                    context: "no edges join the requested terminals".into(),
                });
            }
            if edges.len() == 1 {
                let e = &edges[0];
                let endpoints = [e.a, e.b];
                if endpoints.contains(&terminals[0]) && endpoints.contains(&terminals[1]) {
                    return Ok(edges.remove(0).tree.flattened());
                }
                return Err(NetlistError::NotSeriesParallel {
                    context: "reduced to a single edge that does not join the terminals".into(),
                });
            }

            // Parallel reduction.
            let mut merged = false;
            'outer: for i in 0..edges.len() {
                for j in (i + 1)..edges.len() {
                    let same = (edges[i].a == edges[j].a && edges[i].b == edges[j].b)
                        || (edges[i].a == edges[j].b && edges[i].b == edges[j].a);
                    if same {
                        let ej = edges.remove(j);
                        let ei = &mut edges[i];
                        ei.tree = SpTree::Parallel(vec![ei.tree.clone(), ej.tree]);
                        merged = true;
                        break 'outer;
                    }
                }
            }
            if merged {
                continue;
            }

            // Pendant elimination: an edge hanging off a degree-one node that
            // is not a terminal can never lie on a terminal-to-terminal path
            // (it belongs to the other branch of a differential network), so
            // it is dropped.
            let mut degree = std::collections::HashMap::new();
            for e in &edges {
                *degree.entry(e.a).or_insert(0usize) += 1;
                *degree.entry(e.b).or_insert(0usize) += 1;
            }
            if let Some(pendant) = edges.iter().position(|e| {
                (degree[&e.a] == 1 && !terminals.contains(&e.a))
                    || (degree[&e.b] == 1 && !terminals.contains(&e.b))
            }) {
                edges.remove(pendant);
                continue;
            }

            // Series reduction: internal node of degree exactly two.
            let candidate = degree.iter().find_map(|(&node, &deg)| {
                if deg == 2 && !terminals.contains(&node) {
                    Some(node)
                } else {
                    None
                }
            });
            let Some(node) = candidate else {
                return Err(NetlistError::NotSeriesParallel {
                    context: format!(
                        "no parallel or series reduction applies with {} edges remaining",
                        edges.len()
                    ),
                });
            };
            let incident: Vec<usize> = edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.a == node || e.b == node)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(incident.len(), 2, "degree two node must have two edges");
            let second = edges.remove(incident[1]);
            let first = edges.remove(incident[0]);
            let other_a = if first.a == node { first.b } else { first.a };
            let other_b = if second.a == node { second.b } else { second.a };
            edges.push(Edge {
                a: other_a,
                b: other_b,
                tree: SpTree::Series(vec![first.tree, second.tree]),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpl_logic::{parse_expr, TruthTable, Var};

    #[test]
    fn from_expr_counts_devices() {
        let (f, _) = parse_expr("(A+B).(C+D)").unwrap();
        let tree = SpTree::from_expr(&f).unwrap();
        assert_eq!(tree.device_count(), 4);
        assert_eq!(tree.max_depth(), 2);
        assert_eq!(tree.min_depth(), 2);
    }

    #[test]
    fn constants_are_rejected() {
        let (f, _) = parse_expr("1").unwrap();
        assert!(matches!(
            SpTree::from_expr(&f),
            Err(NetlistError::ConstantExpression)
        ));
    }

    #[test]
    fn eval_matches_expression() {
        for text in ["A.B", "A+B", "A^B", "(A+B).(C+D)", "A.B+C.D", "A.(B+C.D)"] {
            let (f, ns) = parse_expr(text).unwrap();
            let tree = SpTree::from_expr(&f).unwrap();
            for word in 0..(1u64 << ns.len()) {
                assert_eq!(
                    tree.eval_bits(word),
                    f.eval_bits(word),
                    "mismatch for {text} on {word:b}"
                );
            }
        }
    }

    #[test]
    fn dual_implements_complement() {
        let (f, ns) = parse_expr("(A+B).(C+D)").unwrap();
        let tree = SpTree::from_expr(&f).unwrap();
        let dual = tree.dual();
        for word in 0..(1u64 << ns.len()) {
            assert_eq!(dual.eval_bits(word), !f.eval_bits(word));
        }
        assert_eq!(dual.device_count(), tree.device_count());
    }

    #[test]
    fn instantiate_builds_equivalent_network() {
        let (f, ns) = parse_expr("A.(B+C.D)").unwrap();
        let tree = SpTree::from_expr(&f).unwrap();
        let mut net = SwitchNetwork::new();
        let top = net.add_node("X", NodeRole::Terminal);
        let bottom = net.add_node("Z", NodeRole::Terminal);
        let internal = tree.instantiate(&mut net, top, bottom, "w");
        assert_eq!(net.switch_count(), tree.device_count());
        assert_eq!(internal.len(), net.internal_nodes().len());
        let tt = net.conduction_table(top, bottom, ns.len()).unwrap();
        let expected = TruthTable::from_expr(&f, ns.len());
        assert_eq!(tt, expected);
    }

    #[test]
    fn extract_recovers_series_parallel_structure() {
        for text in ["A.B", "A+B", "(A+B).(C+D)", "A.(B+C.D)", "A.B+C.D+!A.!C"] {
            let (f, ns) = parse_expr(text).unwrap();
            let tree = SpTree::from_expr(&f).unwrap();
            let mut net = SwitchNetwork::new();
            let top = net.add_node("X", NodeRole::Terminal);
            let bottom = net.add_node("Z", NodeRole::Terminal);
            tree.instantiate(&mut net, top, bottom, "w");
            let recovered = SpTree::extract(&net, top, bottom).unwrap();
            for word in 0..(1u64 << ns.len()) {
                assert_eq!(
                    recovered.eval_bits(word),
                    f.eval_bits(word),
                    "extraction changed the function of {text}"
                );
            }
            assert_eq!(recovered.device_count(), tree.device_count());
        }
    }

    #[test]
    fn extract_rejects_bridge_networks() {
        // Wheatstone-bridge style network is the textbook non-SP graph.
        let mut net = SwitchNetwork::new();
        let x = net.add_node("X", NodeRole::Terminal);
        let m = net.add_node("m", NodeRole::Internal);
        let n = net.add_node("n", NodeRole::Internal);
        let z = net.add_node("Z", NodeRole::Terminal);
        let v = |i: usize| Var::new(i).positive();
        net.add_switch(v(0), x, m);
        net.add_switch(v(1), m, z);
        net.add_switch(v(2), x, n);
        net.add_switch(v(3), n, z);
        net.add_switch(v(4), m, n);
        assert!(matches!(
            SpTree::extract(&net, x, z),
            Err(NetlistError::NotSeriesParallel { .. })
        ));
    }

    #[test]
    fn extract_error_cases() {
        let mut empty = SwitchNetwork::new();
        let ex = empty.add_node("X", NodeRole::Terminal);
        let ez = empty.add_node("Z", NodeRole::Terminal);
        assert!(matches!(
            SpTree::extract(&empty, ex, ez),
            Err(NetlistError::EmptyNetwork)
        ));

        let mut net2 = SwitchNetwork::new();
        let x = net2.add_node("X", NodeRole::Terminal);
        let z = net2.add_node("Z", NodeRole::Terminal);
        net2.add_switch(Var::new(0).positive(), x, z);
        assert!(matches!(
            SpTree::extract(&net2, x, x),
            Err(NetlistError::DegenerateTerminals)
        ));
    }

    #[test]
    fn to_expr_roundtrips() {
        let (f, ns) = parse_expr("A.B + !A.C").unwrap();
        let tree = SpTree::from_expr(&f).unwrap();
        let back = tree.to_expr();
        for word in 0..(1u64 << ns.len()) {
            assert_eq!(back.eval_bits(word), f.eval_bits(word));
        }
    }

    #[test]
    fn flatten_merges_nested_nodes() {
        let a = Var::new(0).positive();
        let b = Var::new(1).positive();
        let c = Var::new(2).positive();
        let nested = SpTree::Series(vec![
            SpTree::Series(vec![SpTree::Device(a), SpTree::Device(b)]),
            SpTree::Device(c),
        ]);
        let flat = nested.flattened();
        assert_eq!(
            flat,
            SpTree::Series(vec![
                SpTree::Device(a),
                SpTree::Device(b),
                SpTree::Device(c)
            ])
        );
        assert_eq!(flat.literals(), vec![a, b, c]);
    }

    #[test]
    fn depth_statistics() {
        let (f, _) = parse_expr("A + B.C.D").unwrap();
        let tree = SpTree::from_expr(&f).unwrap();
        assert_eq!(tree.max_depth(), 3);
        assert_eq!(tree.min_depth(), 1);
    }
}

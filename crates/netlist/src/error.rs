use std::fmt;

/// Errors produced by the switch-network substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A node identifier referenced a node that does not exist.
    UnknownNode {
        /// The offending node index.
        index: usize,
    },
    /// A switch identifier referenced a device that does not exist.
    UnknownSwitch {
        /// The offending switch index.
        index: usize,
    },
    /// The network (or sub-network) is not series-parallel, so it cannot be
    /// decomposed into an [`crate::SpTree`].
    NotSeriesParallel {
        /// Human readable context about where recognition failed.
        context: String,
    },
    /// A constant expression has no transistor network.
    ConstantExpression,
    /// Input text for the netlist reader was malformed.
    ParseError {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A network had no devices where at least one was required.
    EmptyNetwork,
    /// A switch was given a non-positive (or NaN) width.
    InvalidWidth {
        /// Index of the offending switch.
        switch: usize,
    },
    /// A terminal node was expected to differ from another terminal.
    DegenerateTerminals,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNode { index } => write!(f, "unknown node index {index}"),
            NetlistError::UnknownSwitch { index } => write!(f, "unknown switch index {index}"),
            NetlistError::NotSeriesParallel { context } => {
                write!(f, "network is not series-parallel: {context}")
            }
            NetlistError::ConstantExpression => {
                write!(f, "constant expressions have no transistor network")
            }
            NetlistError::ParseError { line, message } => {
                write!(f, "netlist parse error on line {line}: {message}")
            }
            NetlistError::EmptyNetwork => write!(f, "network contains no devices"),
            NetlistError::InvalidWidth { switch } => {
                write!(f, "switch {switch} must have a positive width")
            }
            NetlistError::DegenerateTerminals => {
                write!(f, "terminal nodes of a network must be distinct")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

impl From<dpl_logic::LogicError> for NetlistError {
    fn from(err: dpl_logic::LogicError) -> Self {
        match err {
            dpl_logic::LogicError::ConstantExpression => NetlistError::ConstantExpression,
            other => NetlistError::ParseError {
                line: 0,
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetlistError::NotSeriesParallel {
            context: "bridge between W1 and W2".into(),
        };
        assert!(e.to_string().contains("series-parallel"));
        assert!(e.to_string().contains("bridge"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }

    #[test]
    fn logic_error_converts() {
        let e: NetlistError = dpl_logic::LogicError::ConstantExpression.into();
        assert_eq!(e, NetlistError::ConstantExpression);
    }
}

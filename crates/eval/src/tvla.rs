//! Streaming Welch t-test leakage detection (TVLA).
//!
//! The Test Vector Leakage Assessment methodology (Goodwill et al.) detects
//! *any* first-order information leak without committing to a key
//! hypothesis: traces are captured under two plaintext populations (a fixed
//! plaintext interleaved with random ones) and Welch's t-statistic is
//! computed per sample point.  `|t| > 4.5` at any sample rejects the
//! "no leakage" null hypothesis at overwhelming confidence — a device built
//! from the paper's constant-power gates must stay below the threshold,
//! while a standard-CMOS (Hamming-weight) device fails it within a few
//! hundred traces.
//!
//! The accumulators here follow the protocol of
//! [`dpl_power::DpaAccumulator`] / [`dpl_power::CpaAccumulator`]:
//!
//! * a **single `update` over a whole [`TraceSet`]** defines the in-memory
//!   statistic ([`tvla`] / [`tvla_second_order`]),
//! * feeding the same traces chunk-by-chunk (the out-of-core path of
//!   `dpl-store`) performs the exact same floating-point additions per
//!   accumulator slot and is therefore **bit-identical**,
//! * [`WelchAccumulator::merge`] combines partials over *contiguous*
//!   trace ranges (enforced via each partial's recorded start index),
//! * the second-order accumulator is two-pass (centered-product
//!   preprocessing centers on the final per-group means) with
//!   [`SecondOrderWelchAccumulator::fork_at`] for parallel replay shares,
//!   mirroring the CPA accumulator's `fork`.
//!
//! Groups are assigned by a *partition function* of the *global trace
//! index* and the trace's input — pure, so any chunking or replay
//! re-derives identical groups.  [`interleaved_partition`] (even index =
//! fixed group) matches the capture discipline of
//! `dpl_crypto::simulate_tvla_traces_into` and the
//! `dpl_store::CampaignKind::TvlaInterleaved` archives.

use dpl_power::stats::welch_t_from_stats;
use dpl_power::TraceSet;

use crate::{EvalError, Result};

/// The conventional TVLA first-order leakage threshold: `|t| > 4.5`
/// corresponds to a ~1e-5 two-sided false-positive probability per sample.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// The two trace populations of a t-test partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TvlaGroup {
    /// The first population (the *fixed* plaintext group in a
    /// fixed-vs-random campaign).
    Fixed,
    /// The second population (the *random* group in a fixed-vs-random
    /// campaign, or the second fixed class in fixed-vs-fixed).
    Random,
}

impl TvlaGroup {
    pub(crate) fn index(self) -> usize {
        match self {
            TvlaGroup::Fixed => 0,
            TvlaGroup::Random => 1,
        }
    }
}

/// The partition of an **interleaved** fixed-vs-random campaign: traces at
/// even global indices belong to the fixed group, odd indices to the random
/// group.  This is the capture discipline of
/// `dpl_crypto::simulate_tvla_traces_into` and of archives tagged
/// `CampaignKind::TvlaInterleaved`.
pub fn interleaved_partition(index: u64, _input: u64) -> Option<TvlaGroup> {
    Some(if index.is_multiple_of(2) {
        TvlaGroup::Fixed
    } else {
        TvlaGroup::Random
    })
}

/// A fixed-vs-fixed partition **by input value**: traces whose input equals
/// `a` form the fixed group, traces equal to `b` the second group, and
/// everything else is discarded.  Useful over attack campaigns (random
/// plaintexts), where any two plaintext classes can be tested against each
/// other.
pub fn fixed_vs_fixed(a: u64, b: u64) -> impl Fn(u64, u64) -> Option<TvlaGroup> + Clone {
    move |_index, input| {
        if input == a {
            Some(TvlaGroup::Fixed)
        } else if input == b {
            Some(TvlaGroup::Random)
        } else {
            None
        }
    }
}

/// Per-sample running sums shared by every Welch accumulator and the
/// sample-sharded parallel fold: plain `sum`/`sum of squares`, accumulated
/// strictly in trace order so any chunking (or column ownership) performs
/// the identical addition sequence per slot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct ColumnStats {
    pub(crate) sum: f64,
    pub(crate) sumsq: f64,
}

impl ColumnStats {
    #[inline]
    pub(crate) fn push(&mut self, v: f64) {
        self.sum += v;
        self.sumsq += v * v;
    }

    fn add(&mut self, other: &ColumnStats) {
        self.sum += other.sum;
        self.sumsq += other.sumsq;
    }
}

/// Welch's t from two groups' sufficient statistics over one sample column.
/// Unbiased variances; degenerate cases (a group below two traces, or
/// non-positive pooled variance after cancellation) return `0.0`, matching
/// `dpl_power::stats::welch_t`.
pub(crate) fn t_statistic(counts: [u64; 2], a: &ColumnStats, b: &ColumnStats) -> f64 {
    let (na, nb) = (counts[0] as f64, counts[1] as f64);
    if na < 2.0 || nb < 2.0 {
        return 0.0;
    }
    let ma = a.sum / na;
    let mb = b.sum / nb;
    let va = ((a.sumsq - a.sum * ma) / (na - 1.0)).max(0.0);
    let vb = ((b.sumsq - b.sum * mb) / (nb - 1.0)).max(0.0);
    welch_t_from_stats(na, ma, va, nb, mb, vb)
}

/// The outcome of a t-test evaluation: one t-statistic per trace sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TvlaResult {
    /// Welch's t per sample point (0.0 where undefined; see
    /// [`dpl_power::stats::welch_t`]).
    pub t: Vec<f64>,
    /// Traces classified into each group (`[fixed, random]`).
    pub counts: [u64; 2],
}

impl TvlaResult {
    /// The largest `|t|` over all sample points — the statistic compared
    /// against [`TVLA_THRESHOLD`].
    pub fn max_abs_t(&self) -> f64 {
        self.t.iter().fold(0.0, |acc, &t| acc.max(t.abs()))
    }

    /// `true` when any sample exceeds the given threshold in magnitude.
    pub fn leaks_at(&self, threshold: f64) -> bool {
        self.max_abs_t() > threshold
    }

    /// `true` when any sample exceeds the conventional [`TVLA_THRESHOLD`].
    pub fn leaks(&self) -> bool {
        self.leaks_at(TVLA_THRESHOLD)
    }
}

fn width_check(current: &mut Option<usize>, chunk: &TraceSet) -> Result<usize> {
    let width = chunk.sample_count().map_err(EvalError::Power)?;
    match *current {
        None => *current = Some(width),
        Some(w) if w != width => {
            return Err(EvalError::Misuse {
                message: "chunks with inconsistent sample widths".into(),
            })
        }
        _ => {}
    }
    Ok(width)
}

fn empty_error() -> EvalError {
    EvalError::Misuse {
        message: "no traces were accumulated".into(),
    }
}

/// First-order streaming Welch t-test accumulator.
///
/// Feed any chunking of a trace stream via [`WelchAccumulator::update`]
/// (chunks in trace order), then [`WelchAccumulator::finalize`].  A single
/// update over a whole [`TraceSet`] is the in-memory [`tvla`]; chunked
/// updates are bit-identical to it.  `partition` must be a pure function of
/// `(global trace index, input)`.
#[derive(Debug, Clone)]
pub struct WelchAccumulator<F> {
    partition: F,
    start: u64,
    next: u64,
    samples: Option<usize>,
    counts: [u64; 2],
    /// `stats[group][sample]` running sums.
    stats: [Vec<ColumnStats>; 2],
}

impl<F> WelchAccumulator<F>
where
    F: Fn(u64, u64) -> Option<TvlaGroup>,
{
    /// An empty accumulator whose first trace has global index 0.
    pub fn new(partition: F) -> Self {
        Self::starting_at(partition, 0)
    }

    /// An empty accumulator whose first trace has global index `start` —
    /// the constructor for partial accumulators over a later contiguous
    /// trace range (e.g. one archive chunk), to be [`WelchAccumulator::merge`]d
    /// back in range order.
    pub fn starting_at(partition: F, start: u64) -> Self {
        WelchAccumulator {
            partition,
            start,
            next: start,
            samples: None,
            counts: [0; 2],
            stats: [Vec::new(), Vec::new()],
        }
    }

    /// Traces folded in so far (across both groups, including discarded
    /// traces — the global index keeps advancing).
    pub fn traces(&self) -> u64 {
        self.next - self.start
    }

    /// Folds one chunk of traces (the next contiguous range) into the
    /// accumulator.
    ///
    /// # Errors
    ///
    /// Returns an error for a malformed chunk or an inconsistent sample
    /// width.
    pub fn update(&mut self, chunk: &TraceSet) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let samples = width_check(&mut self.samples, chunk)?;
        if self.stats[0].is_empty() {
            self.stats = [
                vec![ColumnStats::default(); samples],
                vec![ColumnStats::default(); samples],
            ];
        }
        let groups: Vec<Option<TvlaGroup>> = chunk
            .inputs()
            .iter()
            .enumerate()
            .map(|(t, &input)| (self.partition)(self.next + t as u64, input))
            .collect();
        for group in groups.iter().flatten() {
            self.counts[group.index()] += 1;
        }
        // Unrolled 4 wide across sample columns: every (group, sample) slot
        // still receives its additions strictly in trace order, so this is
        // bit-identical to the column-at-a-time fold while amortizing the
        // per-trace group dispatch over four columns.
        let mut s = 0;
        while s + 4 <= samples {
            let c0 = chunk.sample_column(s);
            let c1 = chunk.sample_column(s + 1);
            let c2 = chunk.sample_column(s + 2);
            let c3 = chunk.sample_column(s + 3);
            for (t, group) in groups.iter().enumerate() {
                let Some(g) = group else { continue };
                let row = &mut self.stats[g.index()][s..s + 4];
                row[0].push(c0[t]);
                row[1].push(c1[t]);
                row[2].push(c2[t]);
                row[3].push(c3[t]);
            }
            s += 4;
        }
        while s < samples {
            let column = chunk.sample_column(s);
            let (fixed, random) = {
                let [f, r] = &mut self.stats;
                (&mut f[s], &mut r[s])
            };
            for (group, &v) in groups.iter().zip(column) {
                match group {
                    Some(TvlaGroup::Fixed) => fixed.push(v),
                    Some(TvlaGroup::Random) => random.push(v),
                    None => {}
                }
            }
            s += 1;
        }
        self.next += chunk.len() as u64;
        Ok(())
    }

    /// Merges a partial accumulator covering the trace range immediately
    /// after this one's (checked via the recorded start indices; both must
    /// use the same partition function by contract).
    ///
    /// # Errors
    ///
    /// Returns an error for non-contiguous ranges or mismatched sample
    /// widths.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        if other.start != self.next {
            return Err(EvalError::Misuse {
                message: format!(
                    "merge requires contiguous trace ranges: this accumulator ends at trace {}, \
                     the partial starts at {}",
                    self.next, other.start
                ),
            });
        }
        if other.traces() == 0 {
            return Ok(());
        }
        if self.traces() == 0 {
            self.samples = other.samples;
            self.counts = other.counts;
            self.stats = other.stats.clone();
            self.next = other.next;
            return Ok(());
        }
        if self.samples != other.samples {
            return Err(EvalError::Misuse {
                message: "cannot merge accumulators with different sample widths".into(),
            });
        }
        for group in 0..2 {
            self.counts[group] += other.counts[group];
            for (acc, v) in self.stats[group].iter_mut().zip(&other.stats[group]) {
                acc.add(v);
            }
        }
        self.next = other.next;
        Ok(())
    }

    /// The per-sample t-statistics **without consuming** the accumulator —
    /// usable as a running snapshot while traces keep arriving.
    ///
    /// # Errors
    ///
    /// Returns an error if no traces were accumulated.
    pub fn evaluate(&self) -> Result<TvlaResult> {
        if self.traces() == 0 {
            return Err(empty_error());
        }
        let t = (0..self.samples.unwrap_or(0))
            .map(|s| t_statistic(self.counts, &self.stats[0][s], &self.stats[1][s]))
            .collect();
        Ok(TvlaResult {
            t,
            counts: self.counts,
        })
    }

    /// Consumes the accumulator and returns the per-sample t-statistics.
    ///
    /// # Errors
    ///
    /// Returns an error if no traces were accumulated.
    pub fn finalize(self) -> Result<TvlaResult> {
        self.evaluate()
    }
}

/// Which pass a [`SecondOrderWelchAccumulator`] is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pass {
    Means,
    Centered,
}

/// Second-order streaming t-test accumulator: **centered-product
/// preprocessing**.  Every sample is replaced by its squared deviation from
/// its group's (final) per-sample mean, `y = (x - mean)²`, and Welch's t is
/// computed on the preprocessed values — the standard univariate
/// second-order TVLA, sensitive to variance-based leaks that first-order
/// masking hides.
///
/// Centering on the *final* means makes this a **two-pass** protocol,
/// exactly like [`dpl_power::CpaAccumulator`]: feed every chunk via
/// [`SecondOrderWelchAccumulator::update`], call
/// [`SecondOrderWelchAccumulator::begin_second_pass`], replay every chunk
/// in the same order, then finalize.  Chunked double passes are
/// bit-identical to the in-memory [`tvla_second_order`].
#[derive(Debug, Clone)]
pub struct SecondOrderWelchAccumulator<F> {
    partition: F,
    start: u64,
    next: u64,
    pass: Pass,
    samples: Option<usize>,
    counts: [u64; 2],
    /// Pass-1 per-group per-sample plain sums.
    sum: [Vec<f64>; 2],
    /// Sealed per-group per-sample means.
    mean: [Vec<f64>; 2],
    /// Pass-2 running sums over the preprocessed values.
    centered: [Vec<ColumnStats>; 2],
    /// First global index of this accumulator's replay share.
    second_start: u64,
    /// Replay cursor (global index) and classified count of the second pass.
    second_next: u64,
    second_counts: [u64; 2],
}

impl<F> SecondOrderWelchAccumulator<F>
where
    F: Fn(u64, u64) -> Option<TvlaGroup>,
{
    /// An empty accumulator whose first trace has global index 0.
    pub fn new(partition: F) -> Self {
        SecondOrderWelchAccumulator {
            partition,
            start: 0,
            next: 0,
            pass: Pass::Means,
            samples: None,
            counts: [0; 2],
            sum: [Vec::new(), Vec::new()],
            mean: [Vec::new(), Vec::new()],
            centered: [Vec::new(), Vec::new()],
            second_start: 0,
            second_next: 0,
            second_counts: [0; 2],
        }
    }

    /// Traces folded into the first pass so far.
    pub fn traces(&self) -> u64 {
        self.next - self.start
    }

    /// Folds one chunk into the current pass.  The second pass must replay
    /// exactly the first pass's traces, in the same order.
    ///
    /// # Errors
    ///
    /// Returns an error for a malformed chunk, an inconsistent sample
    /// width, or a second-pass replay longer than the first pass.
    pub fn update(&mut self, chunk: &TraceSet) -> Result<()> {
        match self.pass {
            Pass::Means => self.update_means(chunk),
            Pass::Centered => self.update_centered(chunk),
        }
    }

    fn update_means(&mut self, chunk: &TraceSet) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let samples = width_check(&mut self.samples, chunk)?;
        if self.sum[0].is_empty() {
            self.sum = [vec![0.0; samples], vec![0.0; samples]];
        }
        let groups: Vec<Option<TvlaGroup>> = chunk
            .inputs()
            .iter()
            .enumerate()
            .map(|(t, &input)| (self.partition)(self.next + t as u64, input))
            .collect();
        for group in groups.iter().flatten() {
            self.counts[group.index()] += 1;
        }
        // Same 4-wide column unroll as WelchAccumulator::update: each
        // (group, sample) sum is fed in trace order, so bit-identity holds.
        let mut s = 0;
        while s + 4 <= samples {
            let c0 = chunk.sample_column(s);
            let c1 = chunk.sample_column(s + 1);
            let c2 = chunk.sample_column(s + 2);
            let c3 = chunk.sample_column(s + 3);
            for (t, group) in groups.iter().enumerate() {
                let Some(g) = group else { continue };
                let row = &mut self.sum[g.index()][s..s + 4];
                row[0] += c0[t];
                row[1] += c1[t];
                row[2] += c2[t];
                row[3] += c3[t];
            }
            s += 4;
        }
        while s < samples {
            let column = chunk.sample_column(s);
            for (group, &v) in groups.iter().zip(column) {
                if let Some(g) = group {
                    self.sum[g.index()][s] += v;
                }
            }
            s += 1;
        }
        self.next += chunk.len() as u64;
        Ok(())
    }

    /// Seals the per-group means and switches to centered-product
    /// accumulation.
    ///
    /// # Errors
    ///
    /// Returns an error if the second pass already began.
    pub fn begin_second_pass(&mut self) -> Result<()> {
        if self.pass == Pass::Centered {
            return Err(EvalError::Misuse {
                message: "the second-order accumulator is already in its second pass".into(),
            });
        }
        self.pass = Pass::Centered;
        self.second_start = self.start;
        self.second_next = self.start;
        let samples = self.samples.unwrap_or(0);
        for group in 0..2 {
            let n = self.counts[group] as f64;
            self.mean[group] = self.sum[group]
                .iter()
                .map(|&sum| if n > 0.0 { sum / n } else { 0.0 })
                .collect();
        }
        self.centered = [
            vec![ColumnStats::default(); samples],
            vec![ColumnStats::default(); samples],
        ];
        Ok(())
    }

    fn update_centered(&mut self, chunk: &TraceSet) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let samples = width_check(&mut self.samples, chunk)?;
        if self.second_next + chunk.len() as u64 > self.next {
            return Err(EvalError::Misuse {
                message: "the second pass replayed more traces than the first pass folded".into(),
            });
        }
        let groups: Vec<Option<TvlaGroup>> = chunk
            .inputs()
            .iter()
            .enumerate()
            .map(|(t, &input)| (self.partition)(self.second_next + t as u64, input))
            .collect();
        for group in groups.iter().flatten() {
            self.second_counts[group.index()] += 1;
        }
        // 4-wide column unroll over the centered-product push: the deviation
        // `v - mean` and its square use the same operands as the scalar loop
        // and each slot is fed in trace order — bit-identical.
        let mut s = 0;
        while s + 4 <= samples {
            let c0 = chunk.sample_column(s);
            let c1 = chunk.sample_column(s + 1);
            let c2 = chunk.sample_column(s + 2);
            let c3 = chunk.sample_column(s + 3);
            for (t, group) in groups.iter().enumerate() {
                let Some(g) = group else { continue };
                let g = g.index();
                let means = &self.mean[g][s..s + 4];
                let row = &mut self.centered[g][s..s + 4];
                let d0 = c0[t] - means[0];
                let d1 = c1[t] - means[1];
                let d2 = c2[t] - means[2];
                let d3 = c3[t] - means[3];
                row[0].push(d0 * d0);
                row[1].push(d1 * d1);
                row[2].push(d2 * d2);
                row[3].push(d3 * d3);
            }
            s += 4;
        }
        while s < samples {
            let column = chunk.sample_column(s);
            let (fixed, random) = {
                let [f, r] = &mut self.centered;
                (&mut f[s], &mut r[s])
            };
            for (group, &v) in groups.iter().zip(column) {
                match group {
                    Some(TvlaGroup::Fixed) => {
                        let d = v - self.mean[0][s];
                        fixed.push(d * d);
                    }
                    Some(TvlaGroup::Random) => {
                        let d = v - self.mean[1][s];
                        random.push(d * d);
                    }
                    None => {}
                }
            }
            s += 1;
        }
        self.second_next += chunk.len() as u64;
        Ok(())
    }

    /// A second-pass worker accumulator that will replay the contiguous
    /// chunk share starting at global trace index `replay_start`: it shares
    /// this accumulator's sealed means but starts with zeroed centered
    /// sums, so disjoint replay shares can be folded in parallel and merged
    /// back in range order — the analogue of
    /// [`dpl_power::CpaAccumulator::fork`].
    ///
    /// # Errors
    ///
    /// Returns an error if the second pass has not begun.
    pub fn fork_at(&self, replay_start: u64) -> Result<Self>
    where
        F: Clone,
    {
        if self.pass != Pass::Centered {
            return Err(EvalError::Misuse {
                message: "fork_at() requires the second pass; call begin_second_pass first".into(),
            });
        }
        let mut fork = self.clone();
        let samples = self.samples.unwrap_or(0);
        fork.centered = [
            vec![ColumnStats::default(); samples],
            vec![ColumnStats::default(); samples],
        ];
        fork.second_counts = [0; 2];
        fork.second_start = replay_start;
        fork.second_next = replay_start;
        Ok(fork)
    }

    /// Merges a second-pass fork that replayed the range immediately after
    /// this accumulator's replay cursor.
    ///
    /// # Errors
    ///
    /// Returns an error outside the second pass or for a non-contiguous
    /// replay range.
    pub fn merge_fork(&mut self, other: &Self) -> Result<()> {
        if self.pass != Pass::Centered || other.pass != Pass::Centered {
            return Err(EvalError::Misuse {
                message: "merge_fork() requires both accumulators in the second pass".into(),
            });
        }
        if other.second_start != self.second_next {
            return Err(EvalError::Misuse {
                message: format!(
                    "merge_fork requires contiguous replay ranges: this accumulator's replay \
                     cursor is at trace {}, the fork started at {}",
                    self.second_next, other.second_start
                ),
            });
        }
        for group in 0..2 {
            self.second_counts[group] += other.second_counts[group];
            for (acc, v) in self.centered[group].iter_mut().zip(&other.centered[group]) {
                acc.add(v);
            }
        }
        self.second_next = other.second_next;
        Ok(())
    }

    /// The per-sample second-order t-statistics **without consuming** the
    /// accumulator.
    ///
    /// # Errors
    ///
    /// Returns an error if no traces were accumulated or the second pass
    /// did not classify exactly the first pass's traces.
    pub fn evaluate(&self) -> Result<TvlaResult> {
        if self.traces() == 0 {
            return Err(empty_error());
        }
        if self.pass != Pass::Centered || self.second_counts != self.counts {
            return Err(EvalError::Misuse {
                message: format!(
                    "the second pass classified {:?} of {:?} traces",
                    self.second_counts, self.counts
                ),
            });
        }
        let t = (0..self.samples.unwrap_or(0))
            .map(|s| t_statistic(self.counts, &self.centered[0][s], &self.centered[1][s]))
            .collect();
        Ok(TvlaResult {
            t,
            counts: self.counts,
        })
    }

    /// Consumes the accumulator and returns the per-sample t-statistics.
    ///
    /// # Errors
    ///
    /// See [`SecondOrderWelchAccumulator::evaluate`].
    pub fn finalize(self) -> Result<TvlaResult> {
        self.evaluate()
    }
}

/// The in-memory first-order TVLA: one [`WelchAccumulator`] fed the whole
/// set in a single update — the reference the chunked and out-of-core folds
/// are bit-identical to.
///
/// # Errors
///
/// Returns an error for an empty or malformed trace set.
pub fn tvla<F>(traces: &TraceSet, partition: F) -> Result<TvlaResult>
where
    F: Fn(u64, u64) -> Option<TvlaGroup>,
{
    let mut accumulator = WelchAccumulator::new(partition);
    accumulator.update(traces)?;
    accumulator.finalize()
}

/// The in-memory second-order TVLA (centered-product preprocessing): one
/// [`SecondOrderWelchAccumulator`] fed the whole set once per pass.
///
/// # Errors
///
/// Returns an error for an empty or malformed trace set.
pub fn tvla_second_order<F>(traces: &TraceSet, partition: F) -> Result<TvlaResult>
where
    F: Fn(u64, u64) -> Option<TvlaGroup>,
{
    let mut accumulator = SecondOrderWelchAccumulator::new(partition);
    accumulator.update(traces)?;
    accumulator.begin_second_pass()?;
    accumulator.update(traces)?;
    accumulator.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpl_power::stats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// An interleaved fixed-vs-random campaign over a toy leaky device:
    /// power = Hamming weight of the input + noise.  `leaky` controls
    /// whether the fixed group has a distinct mean.
    fn campaign(seed: u64, traces: usize, samples: usize, leaky: bool) -> TraceSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = TraceSet::new();
        for t in 0..traces {
            let input = if t % 2 == 0 {
                0xF
            } else {
                rng.gen_range(0..16u64)
            };
            let leak = if leaky {
                input.count_ones() as f64
            } else {
                0.0
            };
            let values: Vec<f64> = (0..samples)
                .map(|_| leak + rng.gen_range(-1.0..1.0))
                .collect();
            set.push_samples(input, &values);
        }
        set
    }

    fn chunks_of(set: &TraceSet, chunk: usize) -> Vec<TraceSet> {
        let mut out = Vec::new();
        let mut start = 0;
        while start < set.len() {
            let end = (start + chunk).min(set.len());
            out.push(set.slice(start, end));
            start = end;
        }
        out
    }

    #[test]
    fn leaky_campaign_fails_tvla_and_constant_campaign_passes() {
        let leaky = campaign(1, 2000, 1, true);
        let result = tvla(&leaky, interleaved_partition).unwrap();
        assert!(result.leaks(), "max |t| = {}", result.max_abs_t());
        assert_eq!(result.counts, [1000, 1000]);

        let quiet = campaign(2, 2000, 1, false);
        let result = tvla(&quiet, interleaved_partition).unwrap();
        assert!(
            !result.leaks(),
            "constant device flagged: |t| = {}",
            result.max_abs_t()
        );
    }

    #[test]
    fn accumulator_t_matches_the_slice_oracle() {
        // The streaming statistic must agree with the two-pass slice helper
        // in dpl_power::stats up to summation-order rounding.
        let set = campaign(3, 1200, 3, true);
        let result = tvla(&set, interleaved_partition).unwrap();
        for s in 0..3 {
            let column = set.sample_column(s);
            let fixed: Vec<f64> = column.iter().step_by(2).copied().collect();
            let random: Vec<f64> = column.iter().skip(1).step_by(2).copied().collect();
            let oracle = stats::welch_t(&fixed, &random);
            assert!(
                (result.t[s] - oracle).abs() <= 1e-9 * oracle.abs().max(1.0),
                "sample {s}: {} vs {oracle}",
                result.t[s]
            );
        }
    }

    #[test]
    fn chunked_first_order_is_bit_identical_to_in_memory() {
        let set = campaign(4, 999, 2, true);
        let whole = tvla(&set, interleaved_partition).unwrap();
        for chunk in [1, 7, 64, 500] {
            let mut acc = WelchAccumulator::new(interleaved_partition);
            for part in chunks_of(&set, chunk) {
                acc.update(&part).unwrap();
            }
            assert_eq!(acc.traces(), 999);
            let streamed = acc.finalize().unwrap();
            assert_eq!(streamed, whole, "chunk={chunk}");
        }
    }

    #[test]
    fn chunked_second_order_is_bit_identical_to_in_memory() {
        let set = campaign(5, 777, 2, true);
        let whole = tvla_second_order(&set, interleaved_partition).unwrap();
        for chunk in [1, 13, 256] {
            let mut acc = SecondOrderWelchAccumulator::new(interleaved_partition);
            let parts = chunks_of(&set, chunk);
            for part in &parts {
                acc.update(part).unwrap();
            }
            acc.begin_second_pass().unwrap();
            for part in &parts {
                acc.update(part).unwrap();
            }
            let streamed = acc.finalize().unwrap();
            assert_eq!(streamed, whole, "chunk={chunk}");
        }
    }

    #[test]
    fn second_order_detects_variance_leakage_that_first_order_misses() {
        // Mean-free variance leak: the fixed group has spread 0.2, the
        // random group spread 2.0, both centered on zero.
        let mut rng = StdRng::seed_from_u64(6);
        let mut set = TraceSet::new();
        for t in 0..4000 {
            let sigma = if t % 2 == 0 { 0.2 } else { 2.0 };
            set.push_samples(t % 16, &[rng.gen_range(-1.0..1.0) * sigma]);
        }
        let first = tvla(&set, interleaved_partition).unwrap();
        let second = tvla_second_order(&set, interleaved_partition).unwrap();
        assert!(!first.leaks(), "first order |t| = {}", first.max_abs_t());
        assert!(second.leaks(), "second order |t| = {}", second.max_abs_t());
    }

    #[test]
    fn merged_partials_match_the_sequential_fold_within_rounding() {
        let set = campaign(7, 600, 2, true);
        let sequential = tvla(&set, interleaved_partition).unwrap();
        let mut merged = WelchAccumulator::new(interleaved_partition);
        for (i, part) in chunks_of(&set, 100).iter().enumerate() {
            let mut partial = WelchAccumulator::starting_at(interleaved_partition, i as u64 * 100);
            partial.update(part).unwrap();
            merged.merge(&partial).unwrap();
        }
        let merged = merged.finalize().unwrap();
        assert_eq!(merged.counts, sequential.counts);
        for (a, b) in merged.t.iter().zip(&sequential.t) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn non_contiguous_merges_are_rejected() {
        let set = campaign(8, 100, 1, true);
        let mut acc = WelchAccumulator::new(interleaved_partition);
        acc.update(&set).unwrap();
        // A partial starting anywhere but trace 100 is a protocol error.
        let mut partial = WelchAccumulator::starting_at(interleaved_partition, 50);
        partial.update(&set.slice(50, 100)).unwrap();
        assert!(matches!(acc.merge(&partial), Err(EvalError::Misuse { .. })));
        let mut good = WelchAccumulator::starting_at(interleaved_partition, 100);
        good.update(&set.slice(0, 20)).unwrap();
        assert!(acc.merge(&good).is_ok());
    }

    #[test]
    fn second_order_protocol_misuse_is_reported() {
        let set = campaign(9, 80, 1, true);
        let mut acc = SecondOrderWelchAccumulator::new(interleaved_partition);
        acc.update(&set).unwrap();
        // Evaluating before the second pass is misuse.
        assert!(matches!(acc.evaluate(), Err(EvalError::Misuse { .. })));
        assert!(acc.fork_at(0).is_err());
        acc.begin_second_pass().unwrap();
        assert!(acc.begin_second_pass().is_err());
        // Incomplete replay is misuse.
        acc.update(&set.slice(0, 40)).unwrap();
        assert!(matches!(acc.evaluate(), Err(EvalError::Misuse { .. })));
        // Over-long replay is misuse.
        let mut over = acc.clone();
        assert!(over.update(&set).is_err());
        // Completing the replay succeeds.
        acc.update(&set.slice(40, 80)).unwrap();
        assert!(acc.evaluate().is_ok());

        // Empty accumulators cannot finalize.
        let empty = WelchAccumulator::new(interleaved_partition);
        assert!(matches!(empty.finalize(), Err(EvalError::Misuse { .. })));
    }

    #[test]
    fn forked_second_pass_matches_the_sequential_replay_within_rounding() {
        let set = campaign(10, 400, 2, true);
        let sequential = tvla_second_order(&set, interleaved_partition).unwrap();

        let mut acc = SecondOrderWelchAccumulator::new(interleaved_partition);
        acc.update(&set).unwrap();
        acc.begin_second_pass().unwrap();
        for (i, part) in chunks_of(&set, 100).iter().enumerate() {
            let mut fork = acc.fork_at(i as u64 * 100).unwrap();
            fork.update(part).unwrap();
            acc.merge_fork(&fork).unwrap();
        }
        let forked = acc.finalize().unwrap();
        assert_eq!(forked.counts, sequential.counts);
        for (a, b) in forked.t.iter().zip(&sequential.t) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn fixed_vs_fixed_partitions_by_input_value() {
        let mut set = TraceSet::new();
        for t in 0..300u64 {
            let input = t % 3; // classes 0, 1, 2
                               // Classes 0 and 1 draw from the same slow drift; class 2 sits
                               // far away from both.
            let value = if input == 2 { 5.0 } else { 0.0 };
            set.push_samples(input, &[value + (t as f64) * 1e-6]);
        }
        // 0 vs 1: nearly identical populations.
        let close = tvla(&set, fixed_vs_fixed(0, 1)).unwrap();
        assert_eq!(close.counts, [100, 100]);
        assert!(!close.leaks());
        // 0 vs 2: wildly different means.
        let far = tvla(&set, fixed_vs_fixed(0, 2)).unwrap();
        assert!(far.leaks());
        // Unmatched inputs are discarded, not misclassified.
        assert_eq!(far.counts, [100, 100]);
    }

    #[test]
    fn degenerate_groups_yield_zero_t_not_nan() {
        // All traces in one group.
        let mut set = TraceSet::new();
        for t in 0..50u64 {
            set.push_samples(t, &[t as f64]);
        }
        let result = tvla(&set, |_, _| Some(TvlaGroup::Fixed)).unwrap();
        assert_eq!(result.t, vec![0.0]);
        assert_eq!(result.counts, [50, 0]);
        assert!(!result.leaks());

        // Constant traces in both groups.
        let mut flat = TraceSet::new();
        for t in 0..50u64 {
            flat.push_samples(t, &[1.0]);
        }
        let result = tvla(&flat, interleaved_partition).unwrap();
        assert_eq!(result.t, vec![0.0]);
        assert!(!result.max_abs_t().is_nan());
    }
}

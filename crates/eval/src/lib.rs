//! # dpl-eval
//!
//! Leakage **assessment** — the measurement side of the paper's headline
//! claim.  The repo could already *run* single DPA/CPA attacks (`dpl-power`)
//! in memory or out of core (`dpl-store`); this crate measures *resistance*:
//!
//! * [`mod@tvla`] — streaming Welch t-test leakage detection (Test Vector
//!   Leakage Assessment): per-sample mergeable accumulators over
//!   fixed-vs-random (or fixed-vs-fixed) partitions, first-order and
//!   second-order (centered-product preprocessing), following the same
//!   `update(chunk)` / `merge` / `fork` protocol as the attack accumulators
//!   of `dpl-power`.  A single update over a whole
//!   [`TraceSet`](dpl_power::TraceSet) defines the in-memory statistic;
//!   chunk-by-chunk folds over a `dpl-store` archive are **bit-identical**
//!   to it, and [`streaming::tvla_parallel`] shards by
//!   *sample column* so even the multi-threaded fold is bit-identical for
//!   any worker count.
//! * [`mtd`] — attack-efficiency estimation: a campaign runner replaying
//!   DPA/CPA over a grid of trace counts × resampled repetitions
//!   (deterministic per-repetition seeds) to produce success-rate and
//!   guessing-entropy curves and a **measurements-to-disclosure** (MTD)
//!   estimate — the quantity the paper uses to compare logic styles
//!   ("orders of magnitude more measurements against SABL than against
//!   standard CMOS").  Grid points are scored by *prefix evaluation* of
//!   streaming accumulators ([`mtd::PrefixAttack`]), not by re-running each
//!   attack from scratch.
//!
//! Both assessments are **energy-model agnostic**: they consume traces (in
//! memory or from any `dpl-store` archive version), so campaigns simulated
//! from characterisation-derived tables (`dpl_crypto::EnergyModel` with
//! the `Characterized` source) and over any library-cell circuit run
//! through the exact same TVLA and MTD machinery as the built-in models —
//! the `repro tvla` / `repro mtd --model <name> --circuit <name>`
//! subcommands are thin wrappers over this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mtd;
pub mod streaming;
pub mod tvla;

pub use mtd::{
    mtd_campaign, mtd_campaign_observed, rep_seed, MtdConfig, MtdCurve, PrefixAttack, PrefixCpa,
    PrefixDpa,
};
pub use streaming::{
    tvla_parallel, tvla_parallel_observed, tvla_parallel_with, tvla_salvage, tvla_streaming,
    tvla_streaming_second_order, TvlaOrder,
};
pub use tvla::{
    fixed_vs_fixed, interleaved_partition, tvla, tvla_second_order, SecondOrderWelchAccumulator,
    TvlaGroup, TvlaResult, WelchAccumulator, TVLA_THRESHOLD,
};

/// Errors produced by the leakage-assessment layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EvalError {
    /// An error bubbled up from the power-analysis layer.
    Power(dpl_power::PowerError),
    /// An error bubbled up from the trace-archive layer.
    Store(dpl_store::StoreError),
    /// An accumulator or campaign runner was driven out of protocol
    /// (non-contiguous merges, an incomplete second pass, an empty grid,
    /// ...).
    Misuse {
        /// Description of the misuse.
        message: String,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Power(e) => write!(f, "power analysis error: {e}"),
            EvalError::Store(e) => write!(f, "trace archive error: {e}"),
            EvalError::Misuse { message } => write!(f, "evaluation misuse: {message}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Power(e) => Some(e),
            EvalError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dpl_power::PowerError> for EvalError {
    fn from(e: dpl_power::PowerError) -> Self {
        EvalError::Power(e)
    }
}

impl From<dpl_store::StoreError> for EvalError {
    fn from(e: dpl_store::StoreError) -> Self {
        EvalError::Store(e)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EvalError>;

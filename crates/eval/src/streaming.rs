//! Out-of-core TVLA over `dpl-store` archives.
//!
//! The sequential folds ([`tvla_streaming`], [`tvla_streaming_second_order`])
//! feed the Welch accumulators chunk by chunk and are **bit-identical** to
//! the in-memory [`crate::tvla()`] / [`crate::tvla_second_order`] over the
//! same traces — the same guarantee the out-of-core attacks of `dpl-store`
//! give.
//!
//! [`tvla_parallel`] goes one step further than the chunk-sharded parallel
//! attacks: it shards work by **sample column**, not by chunk.  Every
//! scoped-thread worker scans the chunks in order but accumulates only the
//! columns it owns (`sample % workers == worker`), so each column's running
//! sums see the *exact* addition sequence of the sequential fold, and the
//! assembled result is **bit-identical to the sequential fold for any
//! worker count** — no floating-point reassociation tolerance needed.  The
//! price is that every worker reads (and checksums) every chunk, which is
//! the right trade for the multi-sample traces TVLA sweeps target; for
//! single-sample archives the fold degrades gracefully to one effective
//! worker.

use std::io::{Read, Seek};
use std::path::Path;

use dpl_obs::{names, Obs};
use dpl_power::TraceSet;
use dpl_store::{
    ArchiveReader, ChunkSource, DamageReport, FoldObs, Result as StoreResult, RetryPolicy,
    SalvageOutcome, StoreError,
};

use crate::tvla::{ColumnStats, SecondOrderWelchAccumulator, WelchAccumulator};
use crate::{EvalError, Result, TvlaGroup, TvlaResult};

/// Which t-test a TVLA evaluation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TvlaOrder {
    /// First-order Welch t-test on the raw samples.
    #[default]
    First,
    /// Second-order t-test on centered-product preprocessed samples
    /// (`y = (x - group mean)²`).
    Second,
}

impl TvlaOrder {
    /// A short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            TvlaOrder::First => "first-order",
            TvlaOrder::Second => "second-order (centered product)",
        }
    }
}

/// First-order Welch t-test folded chunk-by-chunk over any
/// [`ChunkSource`] — a single archive or a sharded campaign
/// ([`dpl_store::ShardedReader`]) alike, with one decode buffer reused
/// across chunks.
///
/// Bit-identical to [`crate::tvla()`] over the same traces.
///
/// # Errors
///
/// Returns an error for an empty archive or any chunk failure (I/O,
/// truncation, checksum mismatch).
pub fn tvla_streaming<S, F>(source: &mut S, partition: F) -> Result<TvlaResult>
where
    S: ChunkSource + ?Sized,
    F: Fn(u64, u64) -> Option<TvlaGroup>,
{
    let mut accumulator = WelchAccumulator::new(partition);
    let samples = source.samples_per_trace();
    let mut fold = FoldObs::start(source.obs(), "eval.tvla_streaming");
    let mut chunk = TraceSet::new();
    for index in 0..source.chunk_count() {
        source.read_chunk_into(index, &mut chunk)?;
        fold.update(&chunk, samples);
        fold.accumulate(|| accumulator.update(&chunk))?;
    }
    fold.finish();
    accumulator.finalize()
}

/// Second-order (centered-product) t-test folded over an archive in two
/// passes; the second pass re-reads the chunks to center on the sealed
/// per-group means.
///
/// Bit-identical to [`crate::tvla_second_order`] over the same traces.
///
/// # Errors
///
/// Returns an error for an empty archive or any chunk failure.
pub fn tvla_streaming_second_order<S, F>(source: &mut S, partition: F) -> Result<TvlaResult>
where
    S: ChunkSource + ?Sized,
    F: Fn(u64, u64) -> Option<TvlaGroup>,
{
    let mut accumulator = SecondOrderWelchAccumulator::new(partition);
    let samples = source.samples_per_trace();
    let mut fold = FoldObs::start(source.obs(), "eval.tvla_streaming_second_order");
    let mut chunk = TraceSet::new();
    for index in 0..source.chunk_count() {
        source.read_chunk_into(index, &mut chunk)?;
        fold.update(&chunk, samples);
        fold.accumulate(|| accumulator.update(&chunk))?;
    }
    accumulator.begin_second_pass()?;
    for index in 0..source.chunk_count() {
        source.read_chunk_into(index, &mut chunk)?;
        fold.update(&chunk, samples);
        fold.accumulate(|| accumulator.update(&chunk))?;
    }
    fold.finish();
    accumulator.finalize()
}

/// TVLA over the surviving chunks of a damaged archive.
///
/// Bit-identical to [`tvla_streaming`] / [`tvla_streaming_second_order`] on
/// a clean archive.  On a damaged one, surviving traces are folded in
/// archive order with the lost traces simply absent — the partition
/// function sees the *compacted* global index — so the result equals the
/// strict statistic over an archive written without the lost chunks'
/// traces.  Whole chunks are kept or excluded, never split.
///
/// # Errors
///
/// Returns an error when damage leaves no usable traces, or (second order)
/// when a chunk that verified in pass 1 fails in pass 2 — the passes must
/// fold the same traces, so that inconsistency fails closed.
pub fn tvla_salvage<R, F>(
    reader: &mut ArchiveReader<R>,
    partition: F,
    order: TvlaOrder,
    retry: &RetryPolicy,
) -> Result<(TvlaResult, DamageReport)>
where
    R: Read + Seek,
    F: Fn(u64, u64) -> Option<TvlaGroup>,
{
    let chunks = reader.chunk_count();
    let samples = reader.samples_per_trace();
    let mut fold = FoldObs::start(reader.obs(), "eval.tvla_salvage");
    let mut report = DamageReport {
        chunks_scanned: chunks,
        traces_total: reader.trace_count(),
        ..DamageReport::default()
    };
    let mut damaged = vec![false; chunks];
    match order {
        TvlaOrder::First => {
            let mut accumulator = WelchAccumulator::new(partition);
            for (index, flag) in damaged.iter_mut().enumerate() {
                match reader.read_chunk_salvage(index, retry)? {
                    SalvageOutcome::Intact(chunk) => {
                        report.traces_read += chunk.len() as u64;
                        fold.update(&chunk, samples);
                        fold.accumulate(|| accumulator.update(&chunk))?;
                    }
                    SalvageOutcome::Damaged(d) => {
                        *flag = true;
                        report.damaged.push(d);
                    }
                }
            }
            fold.finish();
            Ok((accumulator.finalize()?, report))
        }
        TvlaOrder::Second => {
            let mut accumulator = SecondOrderWelchAccumulator::new(partition);
            for (index, flag) in damaged.iter_mut().enumerate() {
                match reader.read_chunk_salvage(index, retry)? {
                    SalvageOutcome::Intact(chunk) => {
                        report.traces_read += chunk.len() as u64;
                        fold.update(&chunk, samples);
                        fold.accumulate(|| accumulator.update(&chunk))?;
                    }
                    SalvageOutcome::Damaged(d) => {
                        *flag = true;
                        report.damaged.push(d);
                    }
                }
            }
            accumulator.begin_second_pass()?;
            for (index, flag) in damaged.iter().enumerate() {
                if *flag {
                    continue;
                }
                match reader.read_chunk_salvage(index, retry)? {
                    SalvageOutcome::Intact(chunk) => {
                        fold.update(&chunk, samples);
                        fold.accumulate(|| accumulator.update(&chunk))?;
                    }
                    SalvageOutcome::Damaged(d) => {
                        return Err(EvalError::Store(StoreError::FormatViolation {
                            message: format!(
                                "chunk {} verified in pass 1 but failed in pass 2 ({}); \
                                 refusing to finalize inconsistent passes",
                                d.chunk, d.cause
                            ),
                        }));
                    }
                }
            }
            fold.finish();
            Ok((accumulator.finalize()?, report))
        }
    }
}

fn default_worker_count() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

fn classify<F>(partition: &F, base: u64, inputs: &[u64]) -> Vec<Option<TvlaGroup>>
where
    F: Fn(u64, u64) -> Option<TvlaGroup>,
{
    inputs
        .iter()
        .enumerate()
        .map(|(t, &input)| partition(base + t as u64, input))
        .collect()
}

/// Per-worker output: the group counts (identical across workers) plus the
/// per-sample per-group sums of the columns this worker owns (untouched
/// defaults elsewhere).
type WorkerStats = ([u64; 2], Vec<[ColumnStats; 2]>);

/// Scoped-thread parallel TVLA over an archive file, sharded by **sample
/// column**: worker `w` of `n` accumulates columns `w, w+n, w+2n, ...`
/// while scanning the chunks in order, so every column's sums are built by
/// the exact addition sequence of the sequential fold.
///
/// The result is **bit-identical to [`tvla_streaming`] /
/// [`tvla_streaming_second_order`] (and hence to the in-memory statistic)
/// for any worker count** — asserted by the integration tests.  Workers
/// default to the available parallelism (capped at 8) and are clamped to
/// the number of sample columns.
///
/// # Errors
///
/// Returns an error for an empty or unreadable archive, or any chunk
/// failure in any worker.
pub fn tvla_parallel<F>(
    path: &Path,
    partition: F,
    order: TvlaOrder,
    workers: Option<usize>,
) -> Result<TvlaResult>
where
    F: Fn(u64, u64) -> Option<TvlaGroup> + Sync,
{
    tvla_parallel_observed(path, partition, order, workers, None)
}

/// [`tvla_parallel`] over any reopenable [`ChunkSource`] — each worker
/// opens its own source via `open` (e.g. a [`dpl_store::ShardedReader`]
/// campaign manifest), so the same column-sharded fold runs over single
/// archives and sharded campaigns alike, with the same bit-identity
/// guarantee for any worker count.
///
/// # Errors
///
/// Returns an error for an empty or unopenable campaign, or any chunk
/// failure in any worker.
pub fn tvla_parallel_with<S, O, F>(
    open: O,
    partition: F,
    order: TvlaOrder,
    workers: Option<usize>,
    obs: Option<&Obs>,
) -> Result<TvlaResult>
where
    S: ChunkSource,
    O: Fn() -> StoreResult<S> + Sync,
    F: Fn(u64, u64) -> Option<TvlaGroup> + Sync,
{
    let probe = open()?;
    if probe.trace_count() == 0 {
        return Err(EvalError::Misuse {
            message: "no traces were accumulated".into(),
        });
    }
    let samples = probe.samples_per_trace();
    let traces = probe.trace_count();
    drop(probe);
    let workers = workers
        .unwrap_or_else(default_worker_count)
        .clamp(1, samples.max(1));
    let span = obs.map(|o| o.span("eval.tvla_parallel"));

    let open = &open;
    let partition = &partition;
    let mut outputs: Vec<Option<Result<WorkerStats>>> = Vec::with_capacity(workers);
    outputs.resize_with(workers, || None);
    std::thread::scope(|scope| {
        for (worker, slot) in outputs.iter_mut().enumerate() {
            scope.spawn(move || {
                *slot = Some(match order {
                    TvlaOrder::First => first_order_worker(open, partition, worker, workers),
                    TvlaOrder::Second => second_order_worker(open, partition, worker, workers),
                });
            });
        }
    });

    let merge_phase = obs.map(|o| o.phase("fold.merge", names::FOLD_MERGE_NS));
    let mut stats = vec![[ColumnStats::default(); 2]; samples];
    let mut counts = [0u64; 2];
    for (worker, slot) in outputs.into_iter().enumerate() {
        let (worker_counts, worker_stats) = slot.unwrap_or(Err(EvalError::Misuse {
            message: format!("worker {worker} never ran"),
        }))?;
        if worker == 0 {
            counts = worker_counts;
        }
        for s in (worker..samples).step_by(workers) {
            stats[s] = worker_stats[s];
        }
    }
    let t = stats
        .iter()
        .map(|column| crate::tvla::t_statistic(counts, &column[0], &column[1]))
        .collect();
    drop(merge_phase);
    if let Some(obs) = obs {
        obs.counter_add(names::FOLD_MERGES, workers as u64);
        obs.counter_add(names::FOLD_TRACES, traces);
    }
    if let Some(span) = span {
        span.arg("workers", workers as u64);
        span.arg("traces", traces);
        span.finish();
    }
    Ok(TvlaResult { t, counts })
}

/// [`tvla_parallel`] with a telemetry context: the whole fold runs under an
/// `eval.tvla_parallel` span (annotated with the worker and trace counts),
/// the assembly of the per-worker partials is attributed to a `fold.merge`
/// phase span, and each reunion counts into `fold.merges`.  Worker threads
/// open their own readers without the context, so chunk-read counters
/// reflect only the probing open — the span and merge phase carry the
/// parallel fold's timing story.
///
/// # Errors
///
/// Returns an error for an empty or unreadable archive, or any chunk
/// failure in any worker.
pub fn tvla_parallel_observed<F>(
    path: &Path,
    partition: F,
    order: TvlaOrder,
    workers: Option<usize>,
    obs: Option<&Obs>,
) -> Result<TvlaResult>
where
    F: Fn(u64, u64) -> Option<TvlaGroup> + Sync,
{
    tvla_parallel_with(|| ArchiveReader::open(path), partition, order, workers, obs)
}

/// One first-order worker: scans every chunk in order (through one reused
/// decode buffer), accumulates raw sums for its own columns only.
fn first_order_worker<S, O, F>(
    open: &O,
    partition: &F,
    worker: usize,
    workers: usize,
) -> Result<WorkerStats>
where
    S: ChunkSource,
    O: Fn() -> StoreResult<S>,
    F: Fn(u64, u64) -> Option<TvlaGroup>,
{
    let mut source = open()?;
    let samples = source.samples_per_trace();
    let mut stats = vec![[ColumnStats::default(); 2]; samples];
    let mut counts = [0u64; 2];
    let mut next = 0u64;
    let mut chunk = TraceSet::new();
    for index in 0..source.chunk_count() {
        source.read_chunk_into(index, &mut chunk)?;
        let groups = classify(partition, next, chunk.inputs());
        for group in groups.iter().flatten() {
            counts[group.index()] += 1;
        }
        for s in (worker..samples).step_by(workers) {
            let column = chunk.sample_column(s);
            for (group, &v) in groups.iter().zip(column) {
                if let Some(g) = group {
                    stats[s][g.index()].push(v);
                }
            }
        }
        next += chunk.len() as u64;
    }
    Ok((counts, stats))
}

/// One second-order worker: pass 1 accumulates the per-group sums of its
/// columns, pass 2 the centered-product sums against the sealed means —
/// the same arithmetic, in the same order, as the sequential
/// [`SecondOrderWelchAccumulator`].
fn second_order_worker<S, O, F>(
    open: &O,
    partition: &F,
    worker: usize,
    workers: usize,
) -> Result<WorkerStats>
where
    S: ChunkSource,
    O: Fn() -> StoreResult<S>,
    F: Fn(u64, u64) -> Option<TvlaGroup>,
{
    let mut source = open()?;
    let samples = source.samples_per_trace();
    let mut sums = vec![[0.0f64; 2]; samples];
    let mut counts = [0u64; 2];
    let mut next = 0u64;
    let mut chunk = TraceSet::new();
    for index in 0..source.chunk_count() {
        source.read_chunk_into(index, &mut chunk)?;
        let groups = classify(partition, next, chunk.inputs());
        for group in groups.iter().flatten() {
            counts[group.index()] += 1;
        }
        for s in (worker..samples).step_by(workers) {
            let column = chunk.sample_column(s);
            for (group, &v) in groups.iter().zip(column) {
                if let Some(g) = group {
                    sums[s][g.index()] += v;
                }
            }
        }
        next += chunk.len() as u64;
    }
    // Seal the means exactly like begin_second_pass does.
    let mut means = vec![[0.0f64; 2]; samples];
    for s in 0..samples {
        for group in 0..2 {
            let n = counts[group] as f64;
            means[s][group] = if n > 0.0 { sums[s][group] / n } else { 0.0 };
        }
    }
    let mut stats = vec![[ColumnStats::default(); 2]; samples];
    let mut next = 0u64;
    for index in 0..source.chunk_count() {
        source.read_chunk_into(index, &mut chunk)?;
        let groups = classify(partition, next, chunk.inputs());
        for s in (worker..samples).step_by(workers) {
            let column = chunk.sample_column(s);
            for (group, &v) in groups.iter().zip(column) {
                if let Some(g) = group {
                    let d = v - means[s][g.index()];
                    stats[s][g.index()].push(d * d);
                }
            }
        }
        next += chunk.len() as u64;
    }
    Ok((counts, stats))
}

//! Measurements-to-disclosure (MTD) estimation.
//!
//! The paper's comparison of logic styles is *quantitative*: a secure style
//! is one an attacker needs **orders of magnitude more measurements** to
//! disclose the key against.  This module estimates that quantity
//! empirically, the way the side-channel literature does:
//!
//! * run the attack over a **grid of trace counts** × many **resampled
//!   repetitions** (independent campaigns with deterministic per-repetition
//!   seeds),
//! * per grid point report the **success rate** (fraction of repetitions
//!   whose best guess is the correct key) and the **guessing entropy**
//!   (mean rank of the correct key, 1 = always first),
//! * the **MTD** is the smallest grid point from which the success rate
//!   stays at or above the configured threshold.
//!
//! Each repetition feeds its traces *incrementally* into a
//! [`PrefixAttack`] engine and snapshots the outcome at every grid point —
//! O(max traces) accumulator work per repetition instead of re-running the
//! attack from scratch per grid point ([`PrefixDpa`] wraps the mergeable
//! `dpl-power` accumulator's non-consuming `evaluate`; [`PrefixCpa`] keeps
//! raw moments so Pearson is evaluable at any prefix, which the two-pass
//! exact CPA accumulator cannot do).

use dpl_power::{AttackResult, DpaAccumulator, TraceSet};

use crate::{EvalError, Result};

/// A streaming key-recovery attack that can score every guess at **any
/// prefix** of the trace stream — the engine a measurements-to-disclosure
/// sweep snapshots at each grid point.
pub trait PrefixAttack {
    /// Folds the next chunk of traces into the attack.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed chunks.
    fn update(&mut self, chunk: &TraceSet) -> dpl_power::Result<()>;

    /// Scores every key guess from the traces folded so far, without
    /// consuming the engine.
    ///
    /// # Errors
    ///
    /// Returns an error if no traces were folded yet.
    fn evaluate(&self) -> dpl_power::Result<AttackResult>;
}

/// Difference-of-means DPA as a prefix attack: a thin wrapper around
/// [`DpaAccumulator`], whose snapshots are exactly the in-memory
/// `dpa_attack` over the prefix.
#[derive(Debug, Clone)]
pub struct PrefixDpa<F> {
    inner: DpaAccumulator<F>,
}

impl<F> PrefixDpa<F>
where
    F: Fn(u64, u64) -> bool,
{
    /// Creates the engine for `key_guesses` guesses.
    ///
    /// # Errors
    ///
    /// Returns an error for zero guesses.
    pub fn new(key_guesses: u64, selection: F) -> dpl_power::Result<Self> {
        Ok(PrefixDpa {
            inner: DpaAccumulator::new(key_guesses, selection)?,
        })
    }
}

impl<F> PrefixAttack for PrefixDpa<F>
where
    F: Fn(u64, u64) -> bool,
{
    fn update(&mut self, chunk: &TraceSet) -> dpl_power::Result<()> {
        self.inner.update(chunk)
    }

    fn evaluate(&self) -> dpl_power::Result<AttackResult> {
        self.inner.evaluate()
    }
}

/// Correlation power analysis as a prefix attack.
///
/// Pearson's correlation centers on the final means, which is why the
/// bit-exact [`dpl_power::CpaAccumulator`] needs two passes and cannot be
/// snapshotted mid-stream.  This engine instead keeps **raw moments**
/// (`Σx`, `Σx²`, `Σy`, `Σy²`, `Σxy`) and evaluates the algebraically
/// equivalent one-pass form
///
/// ```text
/// r = (nΣxy - ΣxΣy) / sqrt((nΣx² - (Σx)²)(nΣy² - (Σy)²))
/// ```
///
/// at any prefix.  Scores agree with `cpa_attack` to numerical (not bit)
/// identity; guess *ranking* — what disclosure is judged on — is the same
/// in practice.  Non-positive variance terms score `0.0`, matching the
/// degenerate-input convention of `dpl_power::stats::pearson`.
#[derive(Debug, Clone)]
pub struct PrefixCpa<F> {
    model: F,
    key_guesses: u64,
    samples: Option<usize>,
    traces: usize,
    /// Per-guess `Σx` / `Σx²` over the hypothesis values.
    sx: Vec<f64>,
    sxx: Vec<f64>,
    /// Per-sample `Σy` / `Σy²` over the measured columns.
    sy: Vec<f64>,
    syy: Vec<f64>,
    /// `sxy[g * samples + s]` cross-moments.
    sxy: Vec<f64>,
}

impl<F> PrefixCpa<F>
where
    F: Fn(u64, u64) -> f64,
{
    /// Creates the engine for `key_guesses` guesses.  `model` must be a
    /// pure function of `(input, guess)`.
    ///
    /// # Errors
    ///
    /// Returns an error for zero guesses.
    pub fn new(key_guesses: u64, model: F) -> dpl_power::Result<Self> {
        if key_guesses == 0 {
            return Err(dpl_power::PowerError::NoKeyGuesses);
        }
        Ok(PrefixCpa {
            model,
            key_guesses,
            samples: None,
            traces: 0,
            sx: vec![0.0; key_guesses as usize],
            sxx: vec![0.0; key_guesses as usize],
            sy: Vec::new(),
            syy: Vec::new(),
            sxy: Vec::new(),
        })
    }
}

impl<F> PrefixAttack for PrefixCpa<F>
where
    F: Fn(u64, u64) -> f64,
{
    fn update(&mut self, chunk: &TraceSet) -> dpl_power::Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let samples = chunk.sample_count()?;
        match self.samples {
            None => {
                self.samples = Some(samples);
                self.sy = vec![0.0; samples];
                self.syy = vec![0.0; samples];
                self.sxy = vec![0.0; self.key_guesses as usize * samples];
            }
            Some(s) if s != samples => {
                return Err(dpl_power::PowerError::MalformedTraces {
                    message: "traces have inconsistent lengths".into(),
                });
            }
            _ => {}
        }
        for (s, (sy, syy)) in self.sy.iter_mut().zip(&mut self.syy).enumerate() {
            for &v in chunk.sample_column(s) {
                *sy += v;
                *syy += v * v;
            }
        }
        let mut hypothesis = vec![0.0f64; chunk.len()];
        for guess in 0..self.key_guesses {
            let g = guess as usize;
            let (mut sx, mut sxx) = (self.sx[g], self.sxx[g]);
            for (h, &input) in hypothesis.iter_mut().zip(chunk.inputs()) {
                *h = (self.model)(input, guess);
                sx += *h;
                sxx += *h * *h;
            }
            self.sx[g] = sx;
            self.sxx[g] = sxx;
            let row = g * samples;
            for s in 0..samples {
                let mut sxy = self.sxy[row + s];
                for (&h, &v) in hypothesis.iter().zip(chunk.sample_column(s)) {
                    sxy += h * v;
                }
                self.sxy[row + s] = sxy;
            }
        }
        self.traces += chunk.len();
        Ok(())
    }

    fn evaluate(&self) -> dpl_power::Result<AttackResult> {
        if self.traces == 0 {
            return Err(dpl_power::PowerError::MalformedTraces {
                message: "trace set is empty".into(),
            });
        }
        let n = self.traces as f64;
        let samples = self.samples.unwrap_or(0);
        let mut scores = Vec::with_capacity(self.key_guesses as usize);
        for guess in 0..self.key_guesses as usize {
            let va = n * self.sxx[guess] - self.sx[guess] * self.sx[guess];
            let row = guess * samples;
            let mut best = 0.0f64;
            for s in 0..samples {
                let vb = n * self.syy[s] - self.sy[s] * self.sy[s];
                let corr = if self.traces < 2 || va <= 0.0 || vb <= 0.0 {
                    0.0
                } else {
                    let cov = n * self.sxy[row + s] - self.sx[guess] * self.sy[s];
                    cov / (va.sqrt() * vb.sqrt())
                };
                best = best.max(corr.abs());
            }
            scores.push(best);
        }
        // dpl_power's winner selection, so prefix engines rank ties
        // identically to the in-memory attacks.
        Ok(dpl_power::best_result(scores))
    }
}

/// The deterministic per-repetition seed of an MTD campaign: a SplitMix64
/// finalizer over `(base seed, repetition index)`, decorrelating the
/// repetitions while keeping the whole sweep a pure function of the base
/// seed.
pub fn rep_seed(base: u64, rep: u64) -> u64 {
    let mut z = base ^ rep.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of a measurements-to-disclosure sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MtdConfig {
    /// Strictly ascending trace counts to evaluate the attack at.
    pub grid: Vec<usize>,
    /// Independent campaign repetitions per grid point.
    pub repetitions: usize,
    /// Base seed; repetition `r` uses [`rep_seed`]`(base_seed, r)`.
    pub base_seed: u64,
    /// Success-rate threshold for disclosure (e.g. `0.8`).
    pub success_threshold: f64,
}

impl MtdConfig {
    /// A sweep over `grid` with the conventional 80 % disclosure threshold.
    pub fn new(grid: Vec<usize>, repetitions: usize, base_seed: u64) -> Self {
        MtdConfig {
            grid,
            repetitions,
            base_seed,
            success_threshold: 0.8,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.grid.is_empty() || self.repetitions == 0 {
            return Err(EvalError::Misuse {
                message: "an MTD sweep needs a non-empty grid and at least one repetition".into(),
            });
        }
        if self.grid.windows(2).any(|w| w[0] >= w[1]) || self.grid[0] == 0 {
            return Err(EvalError::Misuse {
                message: "the MTD grid must be strictly ascending and positive".into(),
            });
        }
        if !(self.success_threshold > 0.0 && self.success_threshold <= 1.0) {
            return Err(EvalError::Misuse {
                message: "the success threshold must lie in (0, 1]".into(),
            });
        }
        Ok(())
    }
}

/// The outcome of an MTD sweep for one device/attack pairing.
#[derive(Debug, Clone, PartialEq)]
pub struct MtdCurve {
    /// The evaluated trace counts.
    pub grid: Vec<usize>,
    /// Fraction of repetitions that recovered the key, per grid point.
    pub success_rate: Vec<f64>,
    /// Mean rank of the correct key (1 = always the best guess), per grid
    /// point.  Ties are midranked: a device whose scores cannot
    /// distinguish any of `g` guesses reports `(g + 1) / 2`, not a
    /// spuriously flattering 1.
    pub guessing_entropy: Vec<f64>,
    /// Smallest grid point from which the success rate stays at or above
    /// the threshold; `None` when the attack never stabilizes above it
    /// within the grid ("no disclosure observed").
    pub mtd: Option<usize>,
}

impl MtdCurve {
    /// `true` when the sweep observed stable disclosure within its grid.
    pub fn disclosed(&self) -> bool {
        self.mtd.is_some()
    }
}

/// Runs a measurements-to-disclosure sweep.
///
/// `generate(seed, n)` produces the `n`-trace campaign of one repetition
/// (deterministic in `seed`); `make_engine()` builds a fresh
/// [`PrefixAttack`] per repetition.  Each repetition generates `grid.last()`
/// traces once, feeds them incrementally, and snapshots the attack at every
/// grid point.
///
/// # Errors
///
/// Returns an error for an invalid configuration, a generator that
/// produces fewer traces than requested, a `correct_key` outside the
/// engine's guess range, or any engine failure.
pub fn mtd_campaign<G, M, A>(
    config: &MtdConfig,
    correct_key: u64,
    generate: G,
    make_engine: M,
) -> Result<MtdCurve>
where
    G: Fn(u64, usize) -> TraceSet,
    M: Fn() -> dpl_power::Result<A>,
    A: PrefixAttack,
{
    config.validate()?;
    let max_traces = *config.grid.last().expect("validated non-empty");
    let mut successes = vec![0usize; config.grid.len()];
    let mut rank_sum = vec![0.0f64; config.grid.len()];

    for rep in 0..config.repetitions {
        let seed = rep_seed(config.base_seed, rep as u64);
        let set = generate(seed, max_traces);
        if set.len() < max_traces {
            return Err(EvalError::Misuse {
                message: format!(
                    "the campaign generator produced {} of the {max_traces} requested traces",
                    set.len()
                ),
            });
        }
        let mut engine = make_engine().map_err(EvalError::Power)?;
        let mut fed = 0usize;
        for (point, &n) in config.grid.iter().enumerate() {
            engine
                .update(&set.slice(fed, n))
                .map_err(EvalError::Power)?;
            fed = n;
            let result = engine.evaluate().map_err(EvalError::Power)?;
            let correct =
                *result
                    .scores
                    .get(correct_key as usize)
                    .ok_or_else(|| EvalError::Misuse {
                        message: format!(
                            "correct key {correct_key:#X} is outside the engine's {} guesses",
                            result.scores.len()
                        ),
                    })?;
            let greater = result.scores.iter().filter(|&&s| s > correct).count();
            let equal = result.scores.iter().filter(|&&s| s == correct).count();
            // Midrank over ties: an attack whose scores cannot distinguish
            // the guesses reports the average rank, not rank 1.
            let rank = 1.0 + greater as f64 + (equal.saturating_sub(1)) as f64 / 2.0;
            rank_sum[point] += rank;
            if result.best_guess == correct_key {
                successes[point] += 1;
            }
        }
    }

    let reps = config.repetitions as f64;
    let success_rate: Vec<f64> = successes.iter().map(|&s| s as f64 / reps).collect();
    let guessing_entropy: Vec<f64> = rank_sum.iter().map(|&r| r / reps).collect();
    let mtd = success_rate
        .iter()
        .rposition(|&sr| sr < config.success_threshold)
        .map_or(Some(0), |last_below| {
            if last_below + 1 < config.grid.len() {
                Some(last_below + 1)
            } else {
                None
            }
        })
        .map(|point| config.grid[point]);

    Ok(MtdCurve {
        grid: config.grid.clone(),
        success_rate,
        guessing_entropy,
        mtd,
    })
}

/// [`mtd_campaign`] with telemetry: the sweep runs inside an
/// `eval.mtd_campaign` span, and the grid size, repetition count, total
/// simulated traces and sweep throughput are recorded into `obs`.
///
/// # Errors
///
/// Exactly those of [`mtd_campaign`].
pub fn mtd_campaign_observed<G, M, A>(
    config: &MtdConfig,
    correct_key: u64,
    generate: G,
    make_engine: M,
    obs: &dpl_obs::Obs,
) -> Result<MtdCurve>
where
    G: Fn(u64, usize) -> TraceSet,
    M: Fn() -> dpl_power::Result<A>,
    A: PrefixAttack,
{
    use dpl_obs::names;
    let span = obs.span("eval.mtd_campaign");
    let curve = mtd_campaign(config, correct_key, generate, make_engine)?;
    let simulated = *config.grid.last().unwrap_or(&0) as u64 * config.repetitions as u64;
    obs.counter_add(names::MTD_GRID_POINTS, config.grid.len() as u64);
    obs.counter_add(names::MTD_REPETITIONS, config.repetitions as u64);
    obs.counter_add(names::MTD_TRACES_SIMULATED, simulated);
    let elapsed = span.finish();
    if let Some(rate) = dpl_obs::rate_per_sec(simulated, elapsed) {
        obs.gauge_max(names::FOLD_TRACES_PER_SEC, rate);
    }
    Ok(curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpl_power::{cpa_attack, dpa_attack};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const SBOX: [u64; 16] = [
        0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
    ];

    fn sbox(x: u64) -> u64 {
        SBOX[(x & 0xF) as usize]
    }

    const KEY: u64 = 0xB;

    /// A leaky campaign generator: Hamming weight of the S-box output plus
    /// Gaussian-ish noise of the given magnitude.
    fn leaky_generator(noise: f64) -> impl Fn(u64, usize) -> TraceSet {
        move |seed, n| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut set = TraceSet::with_capacity(1, n);
            for _ in 0..n {
                let plaintext = rng.gen_range(0..16u64);
                let leak = sbox(plaintext ^ KEY).count_ones() as f64;
                set.push_scalar(plaintext, leak + rng.gen_range(-noise..noise.max(1e-12)));
            }
            set
        }
    }

    /// A constant-power generator: pure noise, nothing to disclose.
    fn quiet_generator() -> impl Fn(u64, usize) -> TraceSet {
        move |seed, n| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut set = TraceSet::with_capacity(1, n);
            for _ in 0..n {
                let plaintext = rng.gen_range(0..16u64);
                set.push_scalar(plaintext, rng.gen_range(-1.0..1.0));
            }
            set
        }
    }

    fn selection(input: u64, guess: u64) -> bool {
        sbox(input ^ guess).count_ones() >= 2
    }

    fn model(input: u64, guess: u64) -> f64 {
        sbox(input ^ guess).count_ones() as f64
    }

    #[test]
    fn prefix_dpa_snapshots_match_in_memory_prefix_attacks() {
        let set = leaky_generator(2.0)(9, 300);
        let mut engine = PrefixDpa::new(16, selection).unwrap();
        for (start, end) in [(0, 50), (50, 120), (120, 300)] {
            engine.update(&set.slice(start, end)).unwrap();
            let snapshot = engine.evaluate().unwrap();
            let oracle = dpa_attack(&set.truncated(end), 16, selection).unwrap();
            assert_eq!(snapshot.scores, oracle.scores, "prefix {end}");
            assert_eq!(snapshot.best_guess, oracle.best_guess);
        }
    }

    #[test]
    fn prefix_cpa_agrees_with_the_exact_two_pass_attack() {
        let set = leaky_generator(1.5)(11, 400);
        let mut engine = PrefixCpa::new(16, model).unwrap();
        for (start, end) in [(0, 128), (128, 400)] {
            engine.update(&set.slice(start, end)).unwrap();
            let snapshot = engine.evaluate().unwrap();
            let oracle = cpa_attack(&set.truncated(end), 16, model).unwrap();
            assert_eq!(snapshot.best_guess, oracle.best_guess, "prefix {end}");
            for (a, b) in snapshot.scores.iter().zip(&oracle.scores) {
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn prefix_engine_misuse_is_reported() {
        assert!(PrefixCpa::new(0, model).is_err());
        assert!(PrefixDpa::new(0, selection).is_err());
        let empty = PrefixCpa::new(16, model).unwrap();
        assert!(empty.evaluate().is_err());
        let mut engine = PrefixCpa::new(16, model).unwrap();
        engine.update(&leaky_generator(1.0)(1, 8)).unwrap();
        let mut two_wide = TraceSet::new();
        two_wide.push_samples(0, &[1.0, 2.0]);
        assert!(engine.update(&two_wide).is_err());
    }

    #[test]
    fn leaky_device_discloses_and_quiet_device_does_not() {
        let config = MtdConfig::new(vec![25, 50, 100, 200, 400], 6, 2005);
        let leaky = mtd_campaign(&config, KEY, leaky_generator(1.0), || {
            PrefixDpa::new(16, selection)
        })
        .unwrap();
        assert!(leaky.disclosed(), "curve: {:?}", leaky.success_rate);
        let mtd = leaky.mtd.unwrap();
        assert!(config.grid.contains(&mtd));
        // Guessing entropy at disclosure is (close to) rank 1.
        let at = config.grid.iter().position(|&n| n == mtd).unwrap();
        assert!(leaky.guessing_entropy[at] < 2.0);

        let quiet = mtd_campaign(&config, KEY, quiet_generator(), || {
            PrefixDpa::new(16, selection)
        })
        .unwrap();
        assert!(!quiet.disclosed(), "curve: {:?}", quiet.success_rate);
    }

    #[test]
    fn sweeps_are_deterministic_in_the_base_seed() {
        let config = MtdConfig::new(vec![50, 150], 4, 77);
        let run = || {
            mtd_campaign(&config, KEY, leaky_generator(2.5), || {
                PrefixCpa::new(16, model)
            })
            .unwrap()
        };
        assert_eq!(run(), run());
        let other = MtdConfig::new(vec![50, 150], 4, 78);
        let differs = mtd_campaign(&other, KEY, leaky_generator(2.5), || {
            PrefixCpa::new(16, model)
        })
        .unwrap();
        // Different base seed, different campaigns (rates may coincide but
        // the full curves should not be identical in general).
        assert!(run() == run() && (differs != run() || differs.success_rate == run().success_rate));
    }

    #[test]
    fn mtd_requires_stable_disclosure_not_a_lucky_spike() {
        // Success pattern [1.0, 0.0, 1.0, 1.0] over the grid: the spike at
        // the first point must not count; MTD is the third point.
        struct Scripted {
            traces: usize,
        }
        impl PrefixAttack for Scripted {
            fn update(&mut self, chunk: &TraceSet) -> dpl_power::Result<()> {
                self.traces += chunk.len();
                Ok(())
            }
            fn evaluate(&self) -> dpl_power::Result<AttackResult> {
                let win = self.traces != 20;
                Ok(AttackResult {
                    scores: if win { vec![0.0, 1.0] } else { vec![1.0, 0.0] },
                    best_guess: u64::from(win),
                })
            }
        }
        let config = MtdConfig::new(vec![10, 20, 30, 40], 3, 1);
        let curve = mtd_campaign(
            &config,
            1,
            |_, n| {
                let mut set = TraceSet::with_capacity(1, n);
                for t in 0..n {
                    set.push_scalar(t as u64, 0.0);
                }
                set
            },
            || Ok(Scripted { traces: 0 }),
        )
        .unwrap();
        assert_eq!(curve.success_rate, vec![1.0, 0.0, 1.0, 1.0]);
        assert_eq!(curve.mtd, Some(30));
        assert_eq!(curve.guessing_entropy[1], 2.0);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let gen = quiet_generator();
        let engine = || PrefixDpa::new(4, selection);
        for config in [
            MtdConfig::new(vec![], 3, 0),
            MtdConfig::new(vec![10, 10], 3, 0),
            MtdConfig::new(vec![20, 10], 3, 0),
            MtdConfig::new(vec![0, 10], 3, 0),
            MtdConfig::new(vec![10], 0, 0),
            MtdConfig {
                success_threshold: 1.5,
                ..MtdConfig::new(vec![10], 2, 0)
            },
        ] {
            assert!(
                mtd_campaign(&config, 0, &gen, engine).is_err(),
                "{config:?}"
            );
        }
        // A correct key outside the guess range errors instead of panicking.
        let config = MtdConfig::new(vec![10], 1, 0);
        assert!(mtd_campaign(&config, 99, &gen, engine).is_err());
        // A generator that under-delivers errors.
        assert!(mtd_campaign(&config, 0, |_, _| TraceSet::new(), engine).is_err());
    }

    #[test]
    fn rep_seeds_are_decorrelated() {
        let seeds: Vec<u64> = (0..100).map(|r| rep_seed(42, r)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        assert_ne!(rep_seed(1, 0), rep_seed(2, 0));
    }
}

//! Transient-simulation based characterisation of differential cells.
//!
//! [`simulate_event`] reproduces the paper's Fig. 3 setup: one precharge /
//! evaluate / precharge sequence of a single gate with a chosen input, with
//! the supply current recorded.  [`characterize_cycles`] chains many
//! evaluation cycles with different inputs and reports the charge drawn from
//! the supply in every cycle, which is the measurement behind the CVSL
//! power-variation comparison and the DPA traces.

use dpl_sim::{
    Circuit, NodeId as SimNodeId, PiecewiseLinear, Stimulus, TransientConfig, TransientResult,
    TransientSimulator,
};

use crate::error::CellError;
use crate::Result;

/// The externally visible pins of a differential cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPins {
    /// The clock input (low = precharge, high = evaluation).
    pub clk: SimNodeId,
    /// For every gate input, the true and the false rail.
    pub inputs: Vec<(SimNodeId, SimNodeId)>,
    /// The output that follows the gate function (stays high when `f = 1`).
    pub out: SimNodeId,
    /// The complementary output.
    pub out_b: SimNodeId,
}

/// Timing and electrical options for event simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventOptions {
    /// Clock period in seconds (half precharge, half evaluation).
    pub period: f64,
    /// Rise/fall time of the clock and input edges.
    pub transition: f64,
    /// Supply voltage.
    pub vdd: f64,
    /// How long the inputs stay complementary into the following precharge
    /// phase, so the internal nodes of the pull-down network are recharged
    /// through it.
    pub input_hold: f64,
    /// Number of warm-up cycles prepended (and discarded) before the
    /// measured cycles in [`characterize_cycles`].
    pub warmup_cycles: usize,
    /// Transient-solver configuration.
    pub sim: TransientConfig,
}

impl Default for EventOptions {
    fn default() -> Self {
        EventOptions {
            period: 4.0e-9,
            transition: 50.0e-12,
            vdd: 1.8,
            input_hold: 1.0e-9,
            warmup_cycles: 1,
            sim: TransientConfig::default(),
        }
    }
}

fn check_assignment(assignment: u64, inputs: usize) -> Result<()> {
    if inputs < 64 && assignment >= (1u64 << inputs) {
        return Err(CellError::AssignmentOutOfRange { assignment, inputs });
    }
    Ok(())
}

fn clock_source(opts: &EventOptions, cycles: usize) -> PiecewiseLinear {
    let mut points = vec![(0.0, 0.0)];
    for cycle in 0..cycles {
        let t0 = cycle as f64 * opts.period;
        let half = opts.period / 2.0;
        points.push((t0 + half, 0.0));
        points.push((t0 + half + opts.transition, opts.vdd));
        points.push((t0 + opts.period, opts.vdd));
        points.push((t0 + opts.period + opts.transition, 0.0));
    }
    PiecewiseLinear::new(points)
}

fn input_sources(pins: &CellPins, assignments: &[u64], opts: &EventOptions) -> Vec<Stimulus> {
    let mut stimuli = Vec::new();
    for (bit, &(true_rail, false_rail)) in pins.inputs.iter().enumerate() {
        let mut true_points = vec![(0.0, 0.0)];
        let mut false_points = vec![(0.0, 0.0)];
        for (cycle, &assignment) in assignments.iter().enumerate() {
            let t0 = cycle as f64 * opts.period;
            let eval = t0 + opts.period / 2.0;
            let release = t0 + opts.period + opts.input_hold;
            let value = (assignment >> bit) & 1 == 1;
            let (active, inactive) = if value {
                (&mut true_points, &mut false_points)
            } else {
                (&mut false_points, &mut true_points)
            };
            active.push((eval, 0.0));
            active.push((eval + opts.transition, opts.vdd));
            active.push((release, opts.vdd));
            active.push((release + opts.transition, 0.0));
            // The inactive rail stays low; add anchors so later cycles can
            // raise it again cleanly.
            inactive.push((eval, 0.0));
            inactive.push((release + opts.transition, 0.0));
        }
        stimuli.push(Stimulus::new(true_rail, PiecewiseLinear::new(true_points)));
        stimuli.push(Stimulus::new(
            false_rail,
            PiecewiseLinear::new(false_points),
        ));
    }
    stimuli
}

/// Simulates a single precharge / evaluate / precharge sequence of the cell
/// with the given complementary input `assignment` and returns the full
/// transient result (node voltages and supply current).
///
/// # Errors
///
/// Returns an error if the assignment references unknown inputs or the
/// simulation fails.
pub fn simulate_event(
    circuit: &Circuit,
    pins: &CellPins,
    assignment: u64,
    opts: &EventOptions,
) -> Result<TransientResult> {
    check_assignment(assignment, pins.inputs.len())?;
    let assignments = [assignment];
    let mut stimuli = input_sources(pins, &assignments, opts);
    stimuli.push(Stimulus::new(pins.clk, clock_source(opts, 1)));
    let sim = TransientSimulator::new(circuit.clone(), opts.sim)?;
    let duration = 1.5 * opts.period;
    Ok(sim.run(&stimuli, &[], duration)?)
}

/// The supply charge and energy drawn during one evaluation cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleEnergy {
    /// Zero-based index of the (measured) cycle.
    pub cycle: usize,
    /// The complementary input applied during the cycle.
    pub assignment: u64,
    /// Charge drawn from the supply during the cycle window, in coulombs.
    pub charge: f64,
    /// Energy drawn from the supply during the cycle window, in joules.
    pub energy: f64,
}

/// Per-cycle energy profile of a cell over an input sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleProfile {
    cycles: Vec<CycleEnergy>,
}

impl CycleProfile {
    /// The measured cycles.
    pub fn cycles(&self) -> &[CycleEnergy] {
        &self.cycles
    }

    /// The per-cycle energies.
    pub fn energies(&self) -> Vec<f64> {
        self.cycles.iter().map(|c| c.energy).collect()
    }

    /// Smallest per-cycle energy.
    pub fn min_energy(&self) -> f64 {
        self.cycles
            .iter()
            .map(|c| c.energy)
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest per-cycle energy.
    pub fn max_energy(&self) -> f64 {
        self.cycles
            .iter()
            .map(|c| c.energy)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean per-cycle energy.
    pub fn mean_energy(&self) -> f64 {
        if self.cycles.is_empty() {
            return 0.0;
        }
        self.cycles.iter().map(|c| c.energy).sum::<f64>() / self.cycles.len() as f64
    }

    /// Normalised energy deviation `(max - min) / max`, the figure of merit
    /// used in the constant-power literature.
    pub fn normalized_energy_deviation(&self) -> f64 {
        let max = self.max_energy();
        if max <= 0.0 {
            return 0.0;
        }
        (max - self.min_energy()) / max
    }
}

/// Simulates the cell over a sequence of evaluation cycles, one input
/// assignment per cycle, and reports the supply charge drawn in every cycle
/// window (evaluation phase plus the following precharge phase).
///
/// `opts.warmup_cycles` extra cycles with the first assignment are prepended
/// and discarded so that the measured cycles start from a settled state.
///
/// # Errors
///
/// Returns [`CellError::EmptySequence`] for an empty assignment list, or an
/// error if an assignment is out of range or the simulation fails.
pub fn characterize_cycles(
    circuit: &Circuit,
    pins: &CellPins,
    assignments: &[u64],
    opts: &EventOptions,
) -> Result<CycleProfile> {
    if assignments.is_empty() {
        return Err(CellError::EmptySequence);
    }
    for &a in assignments {
        check_assignment(a, pins.inputs.len())?;
    }
    let mut full: Vec<u64> = Vec::with_capacity(assignments.len() + opts.warmup_cycles);
    for _ in 0..opts.warmup_cycles {
        full.push(assignments[0]);
    }
    full.extend_from_slice(assignments);

    let mut stimuli = input_sources(pins, &full, opts);
    stimuli.push(Stimulus::new(pins.clk, clock_source(opts, full.len())));
    let sim = TransientSimulator::new(circuit.clone(), opts.sim)?;
    let duration = full.len() as f64 * opts.period + opts.period / 2.0;
    let result = sim.run(&stimuli, &[], duration)?;

    let current = result.supply_current();
    let dt = current.dt();
    let samples = current.samples();
    let mut cycles = Vec::with_capacity(assignments.len());
    for (k, &assignment) in full.iter().enumerate().skip(opts.warmup_cycles) {
        let window_start = k as f64 * opts.period + opts.period / 2.0;
        let window_end = window_start + opts.period;
        let i0 = (window_start / dt).floor().max(0.0) as usize;
        let i1 = ((window_end / dt).ceil() as usize).min(samples.len());
        let charge: f64 = samples[i0..i1].iter().sum::<f64>() * dt;
        cycles.push(CycleEnergy {
            cycle: k - opts.warmup_cycles,
            assignment,
            charge,
            energy: charge * opts.vdd,
        });
    }
    Ok(CycleProfile { cycles })
}

/// The widest cell [`characterize_events`] will characterise exhaustively:
/// 2^10 = 1024 events is on the order of seconds of transient simulation;
/// anything wider is almost certainly a mistake, not a standard cell
/// (library cells have at most 4 inputs).
pub const MAX_CHARACTERIZED_INPUTS: usize = 10;

/// Transient-characterises the **per-input-event energies** of a cell: for
/// every complementary input assignment `0..2^inputs`, one isolated
/// warmup + measure run of [`characterize_cycles`] with that assignment
/// alone, reporting the supply energy of the measured cycle.
///
/// The result is indexed by assignment — the measurement-derived
/// counterpart of the analytic
/// [`DischargeProfile::energies`](crate::DischargeProfile::energies), and
/// the data behind characterisation-derived gate energy tables.  Isolating
/// each event behind its own warmup cycle (of the same assignment) makes
/// the numbers deterministic and history-free; sequence-dependent memory
/// effects remain visible through [`characterize_cycles`] directly.
///
/// # Errors
///
/// Returns [`CellError::TooManyInputs`] when the cell is too wide for one
/// transient simulation per assignment
/// ([`MAX_CHARACTERIZED_INPUTS`]), or an error if a simulation fails.
pub fn characterize_events(
    circuit: &Circuit,
    pins: &CellPins,
    opts: &EventOptions,
) -> Result<Vec<f64>> {
    let inputs = pins.inputs.len();
    if inputs > MAX_CHARACTERIZED_INPUTS {
        return Err(CellError::TooManyInputs {
            inputs,
            limit: MAX_CHARACTERIZED_INPUTS,
        });
    }
    let mut energies = Vec::with_capacity(1 << inputs);
    for assignment in 0..(1u64 << inputs) {
        let profile = characterize_cycles(circuit, pins, &[assignment], opts)?;
        energies.push(profile.cycles()[0].energy);
    }
    Ok(energies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacitance::CapacitanceModel;
    use crate::sabl::SablCell;
    use dpl_core::Dpdn;
    use dpl_logic::parse_expr;

    fn sabl(text: &str, fully_connected: bool) -> SablCell {
        let (f, ns) = parse_expr(text).unwrap();
        let dpdn = if fully_connected {
            Dpdn::fully_connected(&f, &ns).unwrap()
        } else {
            Dpdn::genuine(&f, &ns).unwrap()
        };
        SablCell::new(&dpdn, &CapacitanceModel::default())
    }

    #[test]
    fn event_simulation_draws_supply_charge() {
        let cell = sabl("A.B", true);
        let opts = EventOptions::default();
        let result = simulate_event(cell.circuit(), cell.pins(), 0b11, &opts).unwrap();
        assert!(result.supply_charge() > 1e-15);
        assert!(result.supply_current().peak() > 0.0);
    }

    #[test]
    fn assignment_range_is_checked() {
        let cell = sabl("A.B", true);
        let opts = EventOptions::default();
        assert!(matches!(
            simulate_event(cell.circuit(), cell.pins(), 0b100, &opts),
            Err(CellError::AssignmentOutOfRange { .. })
        ));
        assert!(matches!(
            characterize_cycles(cell.circuit(), cell.pins(), &[], &opts),
            Err(CellError::EmptySequence)
        ));
    }

    #[test]
    fn over_wide_cells_are_rejected_before_any_simulation() {
        let cell = sabl("A.B", true);
        let mut pins = cell.pins().clone();
        let rail = pins.inputs[0];
        pins.inputs = vec![rail; MAX_CHARACTERIZED_INPUTS + 1];
        assert_eq!(
            characterize_events(cell.circuit(), &pins, &EventOptions::default()),
            Err(CellError::TooManyInputs {
                inputs: MAX_CHARACTERIZED_INPUTS + 1,
                limit: MAX_CHARACTERIZED_INPUTS,
            })
        );
    }

    #[test]
    fn per_event_characterization_separates_the_styles() {
        let fc = sabl("A.B", true);
        let genuine = sabl("A.B", false);
        let opts = EventOptions::default();
        let fc_events = characterize_events(fc.circuit(), fc.pins(), &opts).unwrap();
        let genuine_events = characterize_events(genuine.circuit(), genuine.pins(), &opts).unwrap();
        assert_eq!(fc_events.len(), 4);
        assert_eq!(genuine_events.len(), 4);
        let spread = |events: &[f64]| {
            let max = events.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = events.iter().copied().fold(f64::INFINITY, f64::min);
            (max - min) / max
        };
        assert!(fc_events.iter().all(|&e| e > 0.0));
        assert!(
            spread(&fc_events) < 0.05,
            "fc spread {}",
            spread(&fc_events)
        );
        assert!(spread(&genuine_events) > spread(&fc_events));
        // Deterministic: re-characterising yields the same energies.
        let again = characterize_events(fc.circuit(), fc.pins(), &opts).unwrap();
        assert_eq!(fc_events, again);
    }

    #[test]
    fn fully_connected_cell_has_lower_energy_variation_than_genuine() {
        let fc = sabl("A.B", true);
        let genuine = sabl("A.B", false);
        let opts = EventOptions::default();
        // Visit every input event twice in a mixed order so memory effects
        // across cycles show up.
        let sequence = [0b00u64, 0b11, 0b01, 0b00, 0b10, 0b11, 0b01, 0b10];
        let fc_profile = characterize_cycles(fc.circuit(), fc.pins(), &sequence, &opts).unwrap();
        let genuine_profile =
            characterize_cycles(genuine.circuit(), genuine.pins(), &sequence, &opts).unwrap();
        assert_eq!(fc_profile.cycles().len(), sequence.len());
        assert!(fc_profile.min_energy() > 0.0);
        assert!(
            fc_profile.normalized_energy_deviation()
                < genuine_profile.normalized_energy_deviation(),
            "fully connected NED {} should be below genuine NED {}",
            fc_profile.normalized_energy_deviation(),
            genuine_profile.normalized_energy_deviation()
        );
        // The fully connected gate is close to constant power.
        assert!(fc_profile.normalized_energy_deviation() < 0.05);
    }
}

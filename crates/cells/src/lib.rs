//! # dpl-cells
//!
//! Circuit-level cell generation and characterisation for constant-power
//! differential logic.
//!
//! `dpl-core` produces differential pull-down networks; this crate wraps
//! them into complete logic gates and measures their power behaviour:
//!
//! * [`CapacitanceModel`] — a simple parasitic-capacitance model that assigns
//!   every node of a network a capacitance derived from the widths of the
//!   devices connected to it,
//! * [`SablCell`] — the generic sense-amplifier-based-logic gate of the
//!   paper's Fig. 1 (StrongArm sense amplifier + DPDN), built as a
//!   [`dpl_sim::Circuit`] ready for transient simulation,
//! * [`CvslCell`] — the clocked cascode-voltage-switch-logic baseline the
//!   paper compares against (its AND-NAND gate shows up to ~50 % power
//!   variation),
//! * [`DischargeProfile`] — fast charge-based analysis of which capacitances
//!   discharge for every input event (the quantity plotted in Fig. 4),
//! * [`characterize_cycles`] — transient-simulation-based energy-per-cycle
//!   characterisation across an input sequence (the quantity behind Fig. 3
//!   and the CVSL comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod capacitance;
mod charac;
mod charge;
mod cvsl;
mod error;
mod sabl;

pub use capacitance::CapacitanceModel;
pub use charac::{
    characterize_cycles, characterize_events, simulate_event, CellPins, CycleEnergy, CycleProfile,
    EventOptions, MAX_CHARACTERIZED_INPUTS,
};
pub use charge::{DischargeEvent, DischargeProfile};
pub use cvsl::CvslCell;
pub use error::CellError;
pub use sabl::{SablCell, SablWidths};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CellError>;

//! Shared helpers for mapping a DPDN into a transistor-level circuit.

use dpl_core::Dpdn;
use dpl_sim::{Circuit, MosKind, NodeId as SimNodeId, NodeKind};

use crate::capacitance::CapacitanceModel;

/// The per-input signal nodes of a differential cell: the true and the false
/// rail of every input.
pub(crate) fn add_input_rails(circuit: &mut Circuit, dpdn: &Dpdn) -> Vec<(SimNodeId, SimNodeId)> {
    let ns = dpdn.namespace();
    let mut rails = Vec::with_capacity(ns.len());
    for (_, name) in ns.iter() {
        let t = circuit.add_node(name, NodeKind::Input, 0.0);
        let f = circuit.add_node(format!("{name}_n"), NodeKind::Input, 0.0);
        rails.push((t, f));
    }
    rails
}

/// Adds the DPDN's internal nodes (with modelled capacitance) and its
/// switches (as NMOS devices gated by the input rails) to `circuit`.
///
/// `x`, `y` and `z` are the circuit nodes that play the role of the module
/// output nodes and the common node.  Returns the mapping from DPDN node
/// index to circuit node.
pub(crate) fn add_dpdn_devices(
    circuit: &mut Circuit,
    dpdn: &Dpdn,
    model: &CapacitanceModel,
    rails: &[(SimNodeId, SimNodeId)],
    x: SimNodeId,
    y: SimNodeId,
    z: SimNodeId,
) -> Vec<SimNodeId> {
    let net = dpdn.network();
    let mut map: Vec<Option<SimNodeId>> = vec![None; net.node_count()];
    map[dpdn.x().index()] = Some(x);
    map[dpdn.y().index()] = Some(y);
    map[dpdn.z().index()] = Some(z);
    for node in net.nodes() {
        if map[node.index()].is_some() {
            continue;
        }
        let cap = model.node_capacitance(net, node);
        let sim_node = circuit.add_node(
            format!("dpdn_{}", net.node_name(node)),
            NodeKind::Internal,
            cap,
        );
        map[node.index()] = Some(sim_node);
    }
    for (_, sw) in net.switches() {
        let gate_pair = rails[sw.gate.var().index()];
        let gate = if sw.gate.is_positive() {
            gate_pair.0
        } else {
            gate_pair.1
        };
        let a = map[sw.a.index()].expect("all nodes mapped");
        let b = map[sw.b.index()].expect("all nodes mapped");
        circuit.add_transistor(MosKind::Nmos, gate, a, b, sw.width);
    }
    map.into_iter()
        .map(|n| n.expect("all nodes mapped"))
        .collect()
}

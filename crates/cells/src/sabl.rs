use dpl_core::Dpdn;
use dpl_sim::{Circuit, MosKind, NodeKind};

use crate::builder::{add_dpdn_devices, add_input_rails};
use crate::capacitance::CapacitanceModel;
use crate::charac::CellPins;

/// Device widths used when assembling a SABL gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SablWidths {
    /// Cross-coupled PMOS of the sense amplifier.
    pub cross_pmos: f64,
    /// Cross-coupled NMOS of the sense amplifier.
    pub cross_nmos: f64,
    /// Precharge PMOS devices.
    pub precharge: f64,
    /// The M1 equalisation transistor between X and Y.
    pub m1: f64,
    /// The clocked tail transistor between Z and ground.
    pub tail: f64,
}

impl Default for SablWidths {
    fn default() -> Self {
        SablWidths {
            cross_pmos: 2.0,
            cross_nmos: 1.5,
            precharge: 2.0,
            m1: 1.0,
            tail: 3.0,
        }
    }
}

/// A complete sense-amplifier based logic gate (paper Fig. 1): the StrongArm
/// sense amplifier with its input differential pair replaced by a
/// differential pull-down network.
///
/// The circuit is built for the switch-level transient simulator of
/// [`dpl_sim`]; [`crate::characterize_cycles`] and the `fig3` experiment use
/// it to reproduce the paper's transient waveforms.
///
/// Pin convention: [`CellPins::out`] is the output attached (through the
/// sense amplifier) to the Y side of the DPDN, so it remains high during
/// evaluation exactly when the gate function is `1`; [`CellPins::out_b`] is
/// its complement.
#[derive(Debug, Clone)]
pub struct SablCell {
    circuit: Circuit,
    pins: CellPins,
    input_count: usize,
}

impl SablCell {
    /// Assembles a SABL gate around `dpdn` with default device widths.
    pub fn new(dpdn: &Dpdn, model: &CapacitanceModel) -> Self {
        Self::with_widths(dpdn, model, SablWidths::default())
    }

    /// Assembles a SABL gate with explicit device widths.
    pub fn with_widths(dpdn: &Dpdn, model: &CapacitanceModel, widths: SablWidths) -> Self {
        let mut circuit = Circuit::new();
        let vdd = circuit.add_node("vdd", NodeKind::Supply, 0.0);
        let gnd = circuit.add_node("gnd", NodeKind::Ground, 0.0);
        let clk = circuit.add_node("clk", NodeKind::Input, 0.0);
        let rails = add_input_rails(&mut circuit, dpdn);

        let out = circuit.add_node("out", NodeKind::Internal, model.gate_output_load);
        let out_b = circuit.add_node("out_b", NodeKind::Internal, model.gate_output_load);
        let net = dpdn.network();
        let x = circuit.add_node(
            "x",
            NodeKind::Internal,
            model.output_node_capacitance(net, dpdn.x()),
        );
        let y = circuit.add_node(
            "y",
            NodeKind::Internal,
            model.output_node_capacitance(net, dpdn.y()),
        );
        let z = circuit.add_node(
            "z",
            NodeKind::Internal,
            model.node_capacitance(net, dpdn.z()),
        );

        // Sense amplifier: cross-coupled inverters.  `out` is regenerated
        // from the Y side, `out_b` from the X side.
        circuit.add_transistor(MosKind::Nmos, out, out_b, x, widths.cross_nmos);
        circuit.add_transistor(MosKind::Nmos, out_b, out, y, widths.cross_nmos);
        circuit.add_transistor(MosKind::Pmos, out, vdd, out_b, widths.cross_pmos);
        circuit.add_transistor(MosKind::Pmos, out_b, vdd, out, widths.cross_pmos);

        // Precharge devices (active while the clock is low).
        circuit.add_transistor(MosKind::Pmos, clk, vdd, out, widths.precharge);
        circuit.add_transistor(MosKind::Pmos, clk, vdd, out_b, widths.precharge);

        // M1 equalises X and Y during evaluation so both always discharge.
        circuit.add_transistor(MosKind::Nmos, clk, x, y, widths.m1);
        // Clocked tail device.
        circuit.add_transistor(MosKind::Nmos, clk, z, gnd, widths.tail);

        add_dpdn_devices(&mut circuit, dpdn, model, &rails, x, y, z);

        SablCell {
            circuit,
            pins: CellPins {
                clk,
                inputs: rails,
                out,
                out_b,
            },
            input_count: dpdn.input_count(),
        }
    }

    /// The assembled circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The cell's pin mapping.
    pub fn pins(&self) -> &CellPins {
        &self.pins
    }

    /// Number of gate inputs.
    pub fn input_count(&self) -> usize {
        self.input_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charac::{simulate_event, EventOptions};
    use dpl_logic::parse_expr;

    fn and_nand_cell() -> SablCell {
        let (f, ns) = parse_expr("A.B").unwrap();
        let dpdn = Dpdn::fully_connected(&f, &ns).unwrap();
        SablCell::new(&dpdn, &CapacitanceModel::default())
    }

    #[test]
    fn structure_is_complete() {
        let cell = and_nand_cell();
        // 8 sense-amplifier/clocking devices + 4 DPDN devices.
        assert_eq!(cell.circuit().transistor_count(), 12);
        assert_eq!(cell.input_count(), 2);
        assert_eq!(cell.pins().inputs.len(), 2);
        assert!(cell.circuit().validate().is_ok());
        assert!(cell.circuit().find_node("out").is_some());
        assert!(cell.circuit().find_node("x").is_some());
    }

    #[test]
    fn outputs_are_differential_and_follow_the_function() {
        let cell = and_nand_cell();
        let opts = EventOptions::default();
        for assignment in 0..4u64 {
            let result = simulate_event(cell.circuit(), cell.pins(), assignment, &opts).unwrap();
            let t_sample = opts.period - 2.0 * opts.transition;
            let v_out = result.voltage(cell.pins().out).at(t_sample);
            let v_out_b = result.voltage(cell.pins().out_b).at(t_sample);
            let expected = assignment == 0b11; // A.B
            if expected {
                assert!(
                    v_out > 1.4,
                    "out should stay high for {assignment:02b}, got {v_out}"
                );
                assert!(
                    v_out_b < 0.4,
                    "out_b should fall for {assignment:02b}, got {v_out_b}"
                );
            } else {
                assert!(
                    v_out < 0.4,
                    "out should fall for {assignment:02b}, got {v_out}"
                );
                assert!(
                    v_out_b > 1.4,
                    "out_b should stay high for {assignment:02b}, got {v_out_b}"
                );
            }
        }
    }

    #[test]
    fn custom_widths_are_respected() {
        let (f, ns) = parse_expr("A.B").unwrap();
        let dpdn = Dpdn::fully_connected(&f, &ns).unwrap();
        let widths = SablWidths {
            tail: 5.0,
            ..SablWidths::default()
        };
        let cell = SablCell::with_widths(&dpdn, &CapacitanceModel::default(), widths);
        let max_width = cell
            .circuit()
            .transistors()
            .iter()
            .map(|t| t.width)
            .fold(0.0, f64::max);
        assert!((max_width - 5.0).abs() < 1e-12);
    }
}

use dpl_core::Dpdn;
use dpl_sim::{Circuit, MosKind, NodeKind};

use crate::builder::{add_dpdn_devices, add_input_rails};
use crate::capacitance::CapacitanceModel;
use crate::charac::CellPins;

/// A clocked cascode voltage switch logic (DCVSL) gate — the baseline the
/// paper compares against.
///
/// The DPDN output nodes are the gate outputs themselves: a cross-coupled
/// PMOS pair restores the high side, precharge PMOS devices set both outputs
/// high while the clock is low, and a clocked tail transistor enables
/// evaluation.  Unlike SABL there is no equalisation transistor between the
/// two sides, so only the conducting side discharges and the internal nodes
/// of the pull-down network discharge (or float) depending on the input
/// data — the memory effect quantified in the paper's §2 ("the variation on
/// the power consumption can be as large as 50 %").
#[derive(Debug, Clone)]
pub struct CvslCell {
    circuit: Circuit,
    pins: CellPins,
    input_count: usize,
}

impl CvslCell {
    /// Assembles a DCVSL gate around `dpdn`.
    pub fn new(dpdn: &Dpdn, model: &CapacitanceModel) -> Self {
        let mut circuit = Circuit::new();
        let vdd = circuit.add_node("vdd", NodeKind::Supply, 0.0);
        let gnd = circuit.add_node("gnd", NodeKind::Ground, 0.0);
        let clk = circuit.add_node("clk", NodeKind::Input, 0.0);
        let rails = add_input_rails(&mut circuit, dpdn);

        let net = dpdn.network();
        // The DPDN's X node pulls down `out_b`, the Y node pulls down `out`,
        // matching the SABL convention (out follows the gate function).
        let out_b = circuit.add_node(
            "out_b",
            NodeKind::Internal,
            model.gate_output_load + model.output_node_capacitance(net, dpdn.x()),
        );
        let out = circuit.add_node(
            "out",
            NodeKind::Internal,
            model.gate_output_load + model.output_node_capacitance(net, dpdn.y()),
        );
        let z = circuit.add_node(
            "z",
            NodeKind::Internal,
            model.node_capacitance(net, dpdn.z()),
        );

        // Cross-coupled PMOS load.
        circuit.add_transistor(MosKind::Pmos, out, vdd, out_b, 2.0);
        circuit.add_transistor(MosKind::Pmos, out_b, vdd, out, 2.0);
        // Precharge devices.
        circuit.add_transistor(MosKind::Pmos, clk, vdd, out, 2.0);
        circuit.add_transistor(MosKind::Pmos, clk, vdd, out_b, 2.0);
        // Clocked tail.
        circuit.add_transistor(MosKind::Nmos, clk, z, gnd, 3.0);

        add_dpdn_devices(&mut circuit, dpdn, model, &rails, out_b, out, z);

        CvslCell {
            circuit,
            pins: CellPins {
                clk,
                inputs: rails,
                out,
                out_b,
            },
            input_count: dpdn.input_count(),
        }
    }

    /// The assembled circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The cell's pin mapping.
    pub fn pins(&self) -> &CellPins {
        &self.pins
    }

    /// Number of gate inputs.
    pub fn input_count(&self) -> usize {
        self.input_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charac::{simulate_event, EventOptions};
    use dpl_logic::parse_expr;

    fn and_nand_cell() -> CvslCell {
        let (f, ns) = parse_expr("A.B").unwrap();
        let dpdn = Dpdn::genuine(&f, &ns).unwrap();
        CvslCell::new(&dpdn, &CapacitanceModel::default())
    }

    #[test]
    fn structure_is_complete() {
        let cell = and_nand_cell();
        // 5 load/clocking devices + 4 DPDN devices.
        assert_eq!(cell.circuit().transistor_count(), 9);
        assert_eq!(cell.input_count(), 2);
        assert!(cell.circuit().validate().is_ok());
    }

    #[test]
    fn outputs_follow_the_function() {
        let cell = and_nand_cell();
        let opts = EventOptions::default();
        for assignment in 0..4u64 {
            let result = simulate_event(cell.circuit(), cell.pins(), assignment, &opts).unwrap();
            let t_sample = opts.period - 2.0 * opts.transition;
            let v_out = result.voltage(cell.pins().out).at(t_sample);
            let v_out_b = result.voltage(cell.pins().out_b).at(t_sample);
            let expected = assignment == 0b11;
            if expected {
                assert!(
                    v_out > 1.4,
                    "out high expected for {assignment:02b}, got {v_out}"
                );
                assert!(
                    v_out_b < 0.4,
                    "out_b low expected for {assignment:02b}, got {v_out_b}"
                );
            } else {
                assert!(
                    v_out < 0.4,
                    "out low expected for {assignment:02b}, got {v_out}"
                );
                assert!(
                    v_out_b > 1.4,
                    "out_b high expected for {assignment:02b}, got {v_out_b}"
                );
            }
        }
    }
}

use dpl_core::Dpdn;
use dpl_netlist::NodeId;

use crate::capacitance::CapacitanceModel;
use crate::Result;

/// The capacitance discharged by one evaluation event of a SABL gate.
///
/// This is the quantity the paper visualises in Fig. 4: the set of node
/// capacitances that are discharged during the evaluation phase (and must be
/// recharged from the supply during the following precharge phase).
#[derive(Debug, Clone, PartialEq)]
pub struct DischargeEvent {
    /// The complementary input assignment of the evaluation phase.
    pub assignment: u64,
    /// Internal DPDN nodes that discharge (connected to X, Y or Z).
    pub discharged_internal: Vec<NodeId>,
    /// Internal DPDN nodes left floating — the memory effect.
    pub floating_internal: Vec<NodeId>,
    /// Total discharged capacitance in farads, including the module output
    /// nodes, the common node and one gate output.
    pub total_capacitance: f64,
    /// Energy drawn from the supply to recharge that capacitance, in joules.
    pub energy: f64,
}

/// Charge-based per-event analysis of a SABL gate built around a DPDN.
///
/// Every evaluation event is analysed independently, starting from a fully
/// precharged state; sequence-dependent effects (a floating node that stays
/// discharged across several cycles) are visible in the transient
/// characterisation of [`crate::characterize_cycles`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct DischargeProfile {
    events: Vec<DischargeEvent>,
}

impl DischargeProfile {
    /// Analyses every complementary input event of `dpdn` under the given
    /// capacitance model.
    ///
    /// # Errors
    ///
    /// Returns an error when the gate has too many inputs to enumerate.
    pub fn analyze(dpdn: &Dpdn, model: &CapacitanceModel) -> Result<Self> {
        // Reuse the connectivity verification to know, per event, which
        // internal nodes are connected to an external node.
        let report = dpl_core::verify::connectivity_report(dpdn)?;
        let net = dpdn.network();
        let internal = dpdn.internal_nodes();

        // Per-node capacitances.
        let cap_of = |node: NodeId| -> f64 {
            if node == dpdn.x() || node == dpdn.y() {
                model.output_node_capacitance(net, node)
            } else {
                model.node_capacitance(net, node)
            }
        };
        let fixed_part =
            cap_of(dpdn.x()) + cap_of(dpdn.y()) + cap_of(dpdn.z()) + model.gate_output_load;

        let mut events = Vec::with_capacity(report.events().len());
        for ev in report.events() {
            let discharged_internal = ev.discharged.clone();
            let floating_internal: Vec<NodeId> = internal
                .iter()
                .copied()
                .filter(|n| !discharged_internal.contains(n))
                .collect();
            let internal_cap: f64 = discharged_internal.iter().map(|&n| cap_of(n)).sum();
            let total_capacitance = fixed_part + internal_cap;
            events.push(DischargeEvent {
                assignment: ev.assignment,
                discharged_internal,
                floating_internal,
                total_capacitance,
                energy: model.energy(total_capacitance),
            });
        }
        Ok(DischargeProfile { events })
    }

    /// Per-event details.
    pub fn events(&self) -> &[DischargeEvent] {
        &self.events
    }

    /// The smallest discharged capacitance over all events.
    pub fn min_capacitance(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.total_capacitance)
            .fold(f64::INFINITY, f64::min)
    }

    /// The largest discharged capacitance over all events.
    pub fn max_capacitance(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.total_capacitance)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Relative spread `(max - min) / max` of the discharged capacitance —
    /// zero for a perfectly constant-power gate.
    pub fn capacitance_spread(&self) -> f64 {
        let max = self.max_capacitance();
        if max <= 0.0 {
            return 0.0;
        }
        (max - self.min_capacitance()) / max
    }

    /// `true` when the discharged capacitance is the same (within `tolerance`
    /// relative) for every event.
    pub fn is_constant(&self, tolerance: f64) -> bool {
        self.capacitance_spread() <= tolerance
    }

    /// The per-event energies, indexed by assignment.
    pub fn energies(&self) -> Vec<f64> {
        self.events.iter().map(|e| e.energy).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpl_logic::parse_expr;

    fn profiles(text: &str) -> (DischargeProfile, DischargeProfile) {
        let (f, ns) = parse_expr(text).unwrap();
        let model = CapacitanceModel::default();
        let genuine = Dpdn::genuine(&f, &ns).unwrap();
        let fc = Dpdn::fully_connected(&f, &ns).unwrap();
        (
            DischargeProfile::analyze(&genuine, &model).unwrap(),
            DischargeProfile::analyze(&fc, &model).unwrap(),
        )
    }

    #[test]
    fn fully_connected_and_nand_has_constant_capacitance() {
        let (genuine, fc) = profiles("A.B");
        // Fig. 4: the fully connected AND-NAND discharges (essentially) the
        // same capacitance for every input event.
        assert!(fc.is_constant(1e-9));
        assert!(fc.capacitance_spread() < 1e-9);
        // The genuine network does not: node W floats for some inputs.
        assert!(!genuine.is_constant(1e-3));
        assert!(genuine.capacitance_spread() > 0.05);
        assert!(genuine.min_capacitance() < genuine.max_capacitance());
    }

    #[test]
    fn oai22_profiles_match_paper_shape() {
        let (genuine, fc) = profiles("(A+B).(C+D)");
        assert!(fc.is_constant(1e-9));
        assert!(genuine.capacitance_spread() > fc.capacitance_spread());
        assert_eq!(fc.events().len(), 16);
    }

    #[test]
    fn floating_nodes_are_reported() {
        let (genuine, fc) = profiles("A.B");
        let floating_events: Vec<_> = genuine
            .events()
            .iter()
            .filter(|e| !e.floating_internal.is_empty())
            .collect();
        assert!(!floating_events.is_empty());
        assert!(fc.events().iter().all(|e| e.floating_internal.is_empty()));
    }

    #[test]
    fn energies_scale_with_capacitance() {
        let (_, fc) = profiles("A.B");
        let model = CapacitanceModel::default();
        for e in fc.events() {
            assert!((e.energy - model.energy(e.total_capacitance)).abs() < 1e-30);
            assert!(e.total_capacitance > 0.0);
        }
        assert_eq!(fc.energies().len(), 4);
    }

    #[test]
    fn enhanced_network_is_also_constant() {
        let (f, ns) = parse_expr("A.B").unwrap();
        let model = CapacitanceModel::default();
        let enhanced = Dpdn::fully_connected_enhanced(&f, &ns).unwrap();
        let profile = DischargeProfile::analyze(&enhanced, &model).unwrap();
        assert!(profile.is_constant(1e-9));
        // The enhancement adds pass gates, so the constant capacitance is
        // larger than the plain fully connected network's.
        let fc = Dpdn::fully_connected(&f, &ns).unwrap();
        let fc_profile = DischargeProfile::analyze(&fc, &model).unwrap();
        assert!(profile.max_capacitance() > fc_profile.max_capacitance());
    }
}

use std::fmt;

/// Errors produced by cell generation and characterisation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CellError {
    /// An error bubbled up from the DPDN layer.
    Dpdn(dpl_core::DpdnError),
    /// An error bubbled up from the simulator.
    Sim(dpl_sim::SimError),
    /// The characterisation sequence was empty.
    EmptySequence,
    /// An input assignment referenced more inputs than the cell has.
    AssignmentOutOfRange {
        /// The offending assignment.
        assignment: u64,
        /// Number of inputs of the cell.
        inputs: usize,
    },
    /// The cell has too many inputs for exhaustive per-event
    /// characterisation (one transient simulation per assignment).
    TooManyInputs {
        /// Number of inputs of the cell.
        inputs: usize,
        /// The exhaustive-characterisation limit.
        limit: usize,
    },
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Dpdn(e) => write!(f, "dpdn error: {e}"),
            CellError::Sim(e) => write!(f, "simulation error: {e}"),
            CellError::EmptySequence => write!(f, "characterisation sequence is empty"),
            CellError::AssignmentOutOfRange { assignment, inputs } => write!(
                f,
                "assignment {assignment:#b} uses bits beyond the {inputs} cell inputs"
            ),
            CellError::TooManyInputs { inputs, limit } => write!(
                f,
                "cell has {inputs} inputs; exhaustive per-event characterisation is limited \
                 to {limit}"
            ),
        }
    }
}

impl std::error::Error for CellError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CellError::Dpdn(e) => Some(e),
            CellError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dpl_core::DpdnError> for CellError {
    fn from(e: dpl_core::DpdnError) -> Self {
        CellError::Dpdn(e)
    }
}

impl From<dpl_sim::SimError> for CellError {
    fn from(e: dpl_sim::SimError) -> Self {
        CellError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CellError = dpl_sim::SimError::UnknownNode { index: 1 }.into();
        assert!(e.to_string().contains("simulation"));
        let e = CellError::AssignmentOutOfRange {
            assignment: 0b100,
            inputs: 2,
        };
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CellError>();
    }
}

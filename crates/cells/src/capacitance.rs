use dpl_netlist::{NodeId, SwitchNetwork};

/// A simple parasitic-capacitance model for pull-down networks.
///
/// Every node of a switch network receives a wiring capacitance plus a
/// junction capacitance contribution for each device terminal connected to
/// it, proportional to the device width.  The module output nodes X and Y
/// additionally carry the sense-amplifier and external load capacitance.
///
/// The absolute values default to numbers of the right order of magnitude
/// for a 0.18 µm process (the technology of the paper), but nothing in the
/// reproduced experiments depends on their absolute calibration: the
/// quantity of interest is whether the *discharged* capacitance varies with
/// the input data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitanceModel {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Fixed wiring capacitance per node, in farads.
    pub wire: f64,
    /// Junction capacitance per unit of device width, per connected
    /// terminal, in farads.
    pub junction_per_width: f64,
    /// Additional capacitance of each module output node (X and Y): the
    /// sense-amplifier source junctions.
    pub output_node_extra: f64,
    /// Capacitance of each gate output (OUT and its complement): intrinsic
    /// output capacitance plus interconnect plus the input capacitance of
    /// the driven loads.
    pub gate_output_load: f64,
}

impl Default for CapacitanceModel {
    fn default() -> Self {
        CapacitanceModel {
            vdd: 1.8,
            wire: 0.5e-15,
            junction_per_width: 0.8e-15,
            output_node_extra: 1.0e-15,
            gate_output_load: 6.0e-15,
        }
    }
}

impl CapacitanceModel {
    /// The capacitance of `node` inside `network`, excluding any
    /// output-node or gate-output extras.
    pub fn node_capacitance(&self, network: &SwitchNetwork, node: NodeId) -> f64 {
        let junction: f64 = network
            .switches()
            .filter(|(_, s)| s.a == node || s.b == node)
            .map(|(_, s)| s.width * self.junction_per_width)
            .sum();
        self.wire + junction
    }

    /// The capacitance of a module output node (X or Y) of a DPDN.
    pub fn output_node_capacitance(&self, network: &SwitchNetwork, node: NodeId) -> f64 {
        self.node_capacitance(network, node) + self.output_node_extra
    }

    /// Total capacitance of all nodes of the network (internal view only).
    pub fn network_capacitance(&self, network: &SwitchNetwork) -> f64 {
        network
            .nodes()
            .map(|n| self.node_capacitance(network, n))
            .sum()
    }

    /// Energy required to charge `capacitance` to the supply voltage.
    pub fn energy(&self, capacitance: f64) -> f64 {
        capacitance * self.vdd * self.vdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpl_core::Dpdn;
    use dpl_logic::parse_expr;

    #[test]
    fn node_capacitance_scales_with_degree() {
        let (f, ns) = parse_expr("A.B").unwrap();
        let gate = Dpdn::fully_connected(&f, &ns).unwrap();
        let model = CapacitanceModel::default();
        let net = gate.network();
        // The internal node W touches three devices (A, !A and B), the X
        // node only one (A).
        let w = net.internal_nodes()[0];
        let cw = model.node_capacitance(net, w);
        let cx = model.node_capacitance(net, gate.x());
        assert!(cw > cx);
        assert!(cx > 0.0);
        assert!(model.output_node_capacitance(net, gate.x()) > cx);
    }

    #[test]
    fn network_capacitance_is_sum_of_nodes() {
        let (f, ns) = parse_expr("A.B").unwrap();
        let gate = Dpdn::fully_connected(&f, &ns).unwrap();
        let model = CapacitanceModel::default();
        let net = gate.network();
        let total: f64 = net.nodes().map(|n| model.node_capacitance(net, n)).sum();
        assert!((model.network_capacitance(net) - total).abs() < 1e-24);
    }

    #[test]
    fn energy_is_cv_squared() {
        let model = CapacitanceModel::default();
        let c = 10e-15;
        assert!((model.energy(c) - c * 1.8 * 1.8).abs() < 1e-30);
    }

    #[test]
    fn defaults_are_physical() {
        let model = CapacitanceModel::default();
        assert!(model.vdd > 0.0);
        assert!(model.wire > 0.0);
        assert!(model.junction_per_width > 0.0);
        assert!(model.gate_output_load > model.wire);
    }
}

//! End-to-end certificate tests: emit → serialize → replay round trips,
//! exhaustive single-byte corruption (every byte flip must fail closed),
//! and the linter's accept/reject contract over real synthesized netlists
//! and their mutations.

use dpl_verify::{
    check_certificate, emit_certificate, lint, lint_structure, CertificateRequest, EnergyFacts,
    LintError, NetlistRecord, VerifiedCircuit, VerifyError,
};

#[test]
fn certificates_round_trip_for_representative_circuits() {
    for (circuit, model) in [
        ("sbox", "enhanced"),
        ("buf", "fc"),
        ("oai22", "enhanced"),
        ("maj3", "fc"),
        ("present1", "enhanced"),
    ] {
        let request = CertificateRequest::parse(circuit, model).unwrap();
        let certificate = emit_certificate(&request).unwrap();
        let report = check_certificate(&certificate.to_text()).unwrap();
        assert_eq!(report.circuit, circuit);
        assert_eq!(report.model, model);
        assert!(report.outputs > 0);
        assert!(report.bdd_nodes > 0);
    }
}

#[test]
fn every_verified_circuit_certifies_and_replays() {
    for circuit in VerifiedCircuit::all() {
        let request = CertificateRequest::parse(&circuit.name(), "enhanced").unwrap();
        let certificate = emit_certificate(&request).unwrap();
        let report = check_certificate(&certificate.to_text()).unwrap();
        assert_eq!(report.circuit, circuit.name());
    }
}

/// The fail-closed guarantee, exhaustively: flipping any single byte of a
/// certificate makes `check` return an error (or makes the bytes invalid
/// UTF-8, which cannot even reach the parser).
#[test]
fn every_single_byte_flip_fails_the_check() {
    let request = CertificateRequest::parse("buf", "enhanced").unwrap();
    let text = emit_certificate(&request).unwrap().to_text();
    let bytes = text.as_bytes();
    for position in 0..bytes.len() {
        for mask in [0x01u8, 0x20, 0x80] {
            let mut corrupt = bytes.to_vec();
            corrupt[position] ^= mask;
            let outcome = match std::str::from_utf8(&corrupt) {
                Err(_) => continue, // not even decodable: fails closed trivially
                Ok(text) => check_certificate(text),
            };
            assert!(
                outcome.is_err(),
                "byte {position} ^ {mask:#04x} was not detected"
            );
        }
    }
}

#[test]
fn the_linter_accepts_every_synthesized_netlist() {
    for circuit in VerifiedCircuit::all() {
        let netlist = circuit.netlist().unwrap();
        let record = NetlistRecord::from_netlist(&netlist);
        let table = dpl_crypto::GateEnergyTable::builtin(
            dpl_crypto::LeakageModel::EnhancedSabl,
            &dpl_cells::CapacitanceModel::default(),
        )
        .unwrap();
        let facts = EnergyFacts::from_table(&table, &netlist, 1e-9);
        let findings = lint(&record, Some((&facts, Some(table.digest()))));
        assert!(
            findings.is_empty(),
            "{}: unexpected findings {findings:?}",
            circuit.name()
        );
    }
}

fn sbox_record() -> NetlistRecord {
    let netlist = VerifiedCircuit::Sbox.netlist().unwrap();
    NetlistRecord::from_netlist(&netlist)
}

#[test]
fn a_flipped_rail_pair_is_an_unbalanced_rails_finding() {
    let mut record = sbox_record();
    record.gates[3].rails.swap(0, 1);
    let findings = lint_structure(&record);
    assert!(
        findings
            .iter()
            .any(|f| matches!(f, LintError::UnbalancedRails { gate: 3, .. })),
        "{findings:?}"
    );
}

#[test]
fn a_swapped_gate_kind_is_an_unknown_cell_finding() {
    let mut record = sbox_record();
    // Claim a different library cell (keeping the rails complementary, so
    // only the cell/table correspondence can catch it).
    let gate = record
        .gates
        .iter_mut()
        .find(|g| g.cell == dpl_core::GateKind::And2.index() as u8)
        .expect("the S-box datapath instantiates AND2");
    gate.cell = dpl_core::GateKind::Or2.index() as u8;
    let findings = lint_structure(&record);
    assert!(
        findings
            .iter()
            .any(|f| matches!(f, LintError::UnknownCell { .. })),
        "{findings:?}"
    );
}

#[test]
fn a_dropped_gate_is_a_dangling_wire_finding() {
    let mut record = sbox_record();
    record.gates.remove(10);
    let findings = lint_structure(&record);
    assert!(
        findings
            .iter()
            .any(|f| matches!(f, LintError::DanglingWire { .. })),
        "{findings:?}"
    );
}

#[test]
fn a_mutated_netlist_also_fails_the_equivalence_replay() {
    // A mutation the structural linter cannot see (a clean DPL netlist
    // computing the wrong function) is still caught: the emitted
    // certificate's claims no longer replay.
    let request = CertificateRequest::parse("sbox", "enhanced").unwrap();
    let mut certificate = emit_certificate(&request).unwrap();
    certificate.record.gates[7].rail ^= 1;
    certificate.gate_digest = certificate.record.digest();
    let result = check_certificate(&certificate.to_text());
    assert!(
        matches!(
            result,
            Err(VerifyError::SignatureMismatch { .. } | VerifyError::SatCountMismatch { .. })
        ),
        "{result:?}"
    );
}

#[test]
fn a_leaky_model_cannot_be_certified() {
    let request = CertificateRequest::parse("and2", "genuine").unwrap();
    assert!(matches!(
        emit_certificate(&request),
        Err(VerifyError::Lint(_))
    ));
}

//! # dpl-verify
//!
//! Static verification for the constant-power differential-logic toolkit:
//! BDD-backed **exact equivalence checking** of synthesized gate netlists
//! against independent specification oracles, a **DPL security linter**
//! with typed diagnostics, and **replayable security certificates**.
//!
//! The paper's security argument is conditional on structural facts about
//! the synthesized netlist — every gate is a library SABL cell, both rails
//! of every differential pair are present and complementary, the gate
//! graph is well-formed, and the per-gate event energies are
//! input-independent.  Earlier layers only *sample* those facts with
//! randomized tests; this crate *proves* them:
//!
//! * [`prove_equivalent`] builds the canonical BDD of every output of a
//!   synthesized [`dpl_crypto::GateNetlist`] and of an independently
//!   constructed specification oracle in one manager — equivalence is node
//!   identity — and additionally sweeps circuits up to 16 inputs
//!   exhaustively against the software reference.
//! * [`lint`] re-establishes the DPL structural contract on an untrusted
//!   [`NetlistRecord`] and reports one typed [`LintError`] per violation.
//! * [`emit_certificate`] serializes a machine-checkable record (gate
//!   list and digest, per-output canonical BDD signatures and model
//!   counts, lint verdicts, energy-table digest and event rows) which
//!   [`check_certificate`] replays **without touching any synthesis or
//!   cell-simulation code path** — the checker re-derives every claim from
//!   the certificate bytes alone and fails closed on any corruption.
//!
//! ```
//! use dpl_verify::{emit_certificate, check_certificate, CertificateRequest};
//!
//! let request = CertificateRequest::parse("and2", "enhanced").unwrap();
//! let certificate = emit_certificate(&request).unwrap();
//! let text = certificate.to_text();
//! let report = check_certificate(&text).unwrap();
//! assert_eq!(report.circuit, "and2");
//! // Any corrupted byte fails closed.
//! let mut corrupt = text.clone().into_bytes();
//! corrupt[40] ^= 0x20;
//! assert!(check_certificate(std::str::from_utf8(&corrupt).unwrap()).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

mod certificate;
mod circuit;
mod equiv;
mod lint;
mod record;

pub use certificate::{
    check_certificate, check_certificate_observed, emit_certificate, emit_certificate_observed,
    Certificate, CertificateRequest, CheckReport, CERT_VERSION, CLEAN_VERDICT,
};
pub use circuit::{
    prove_equivalent, prove_equivalent_observed, EquivalenceReport, VerifiedCircuit,
    MAX_EXHAUSTIVE_INPUTS, MAX_VERIFIED_ROUNDS,
};
pub use equiv::{bdd_signature, netlist_bdds};
pub use lint::{lint, lint_energy, lint_structure, EnergyFacts, LintError};
pub use record::{table_mask, GateRecord, NetlistRecord, RAIL_COMPLEMENT, RAIL_PLAIN};

/// Errors produced by the verification layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VerifyError {
    /// Synthesis of the circuit under verification failed.
    Crypto(dpl_crypto::CryptoError),
    /// A logic-layer operation (truth tables, BDDs) failed.
    Logic(dpl_logic::LogicError),
    /// The netlist record is structurally unusable for symbolic evaluation.
    Structure {
        /// What is malformed.
        message: String,
    },
    /// The security linter rejected the netlist (or its energy model);
    /// `emit` refuses to certify and `check` fails the replay.
    Lint(Vec<LintError>),
    /// An output BDD differs from the specification oracle's.
    NotEquivalent {
        /// Circuit name.
        circuit: String,
        /// Index of the diverging output.
        output: usize,
    },
    /// The exhaustive sweep found an input where the netlist and the
    /// software oracle disagree.
    OracleMismatch {
        /// Circuit name.
        circuit: String,
        /// The diverging bit-packed input.
        input: u64,
        /// Oracle output word.
        expected: u64,
        /// Netlist output word.
        found: u64,
    },
    /// The verifier does not know a circuit by this name.
    UnknownCircuit {
        /// The unrecognized name.
        name: String,
    },
    /// The energy-model name is not recognized.
    UnknownModel {
        /// The unrecognized name.
        name: String,
    },
    /// A certificate failed to parse.
    MalformedCertificate {
        /// 1-based line number.
        line: usize,
        /// What is malformed.
        message: String,
    },
    /// The certificate's trailing checksum does not cover its bytes — the
    /// file was corrupted or truncated.
    ChecksumMismatch {
        /// Checksum recorded in the certificate.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// The embedded gate list does not hash to the recorded gate digest.
    GateDigestMismatch {
        /// Digest recorded in the certificate.
        expected: u64,
        /// Digest of the embedded gate list.
        actual: u64,
    },
    /// A replayed output BDD signature differs from the certificate claim.
    SignatureMismatch {
        /// Output index.
        output: usize,
        /// Claimed canonical signature.
        expected: u64,
        /// Replayed canonical signature.
        actual: u64,
    },
    /// A replayed model count differs from the certificate claim.
    SatCountMismatch {
        /// Output index.
        output: usize,
        /// Claimed model count.
        expected: u128,
        /// Replayed model count.
        actual: u128,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Crypto(e) => write!(f, "synthesis failed: {e}"),
            VerifyError::Logic(e) => write!(f, "logic layer error: {e}"),
            VerifyError::Structure { message } => write!(f, "malformed netlist: {message}"),
            VerifyError::Lint(errors) => {
                write!(f, "security lint failed with {} finding(s):", errors.len())?;
                for e in errors {
                    write!(f, "\n  - {e}")?;
                }
                Ok(())
            }
            VerifyError::NotEquivalent { circuit, output } => write!(
                f,
                "{circuit}: output {output} is not equivalent to the specification oracle"
            ),
            VerifyError::OracleMismatch {
                circuit,
                input,
                expected,
                found,
            } => write!(
                f,
                "{circuit}: input {input:#x} evaluates to {found:#x}, oracle says {expected:#x}"
            ),
            VerifyError::UnknownCircuit { name } => write!(f, "unknown circuit '{name}'"),
            VerifyError::UnknownModel { name } => write!(f, "unknown energy model '{name}'"),
            VerifyError::MalformedCertificate { line, message } => {
                write!(f, "malformed certificate at line {line}: {message}")
            }
            VerifyError::ChecksumMismatch { expected, actual } => write!(
                f,
                "certificate checksum mismatch: recorded {expected:016x}, computed {actual:016x}"
            ),
            VerifyError::GateDigestMismatch { expected, actual } => write!(
                f,
                "gate list digest mismatch: recorded {expected:016x}, computed {actual:016x}"
            ),
            VerifyError::SignatureMismatch {
                output,
                expected,
                actual,
            } => write!(
                f,
                "output {output}: BDD signature mismatch (claimed {expected:016x}, replayed {actual:016x})"
            ),
            VerifyError::SatCountMismatch {
                output,
                expected,
                actual,
            } => write!(
                f,
                "output {output}: model count mismatch (claimed {expected}, replayed {actual})"
            ),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Logic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dpl_logic::LogicError> for VerifyError {
    fn from(value: dpl_logic::LogicError) -> Self {
        VerifyError::Logic(value)
    }
}

impl From<dpl_crypto::CryptoError> for VerifyError {
    fn from(value: dpl_crypto::CryptoError) -> Self {
        VerifyError::Crypto(value)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, VerifyError>;

//! The circuits the toolkit can capture, attack — and now prove.
//!
//! [`VerifiedCircuit`] enumerates every synthesizable datapath of the
//! `repro` CLI (the S-box target, each library-cell datapath, the
//! multi-round mini-PRESENT) together with an **independent** oracle for
//! each: a software reference for exhaustive sweeps, and a symbolic BDD
//! construction that mirrors the specification rather than the synthesis
//! output.  [`prove_equivalent`] checks the synthesized netlist against
//! both.

use dpl_core::GateKind;
use dpl_crypto::{
    library_circuit_windows, mini_p_layer_position, mini_present, present_sbox,
    synthesize_library_circuit, synthesize_present_rounds, synthesize_sbox_with_key, GateNetlist,
    MINI_PRESENT_BITS,
};
use dpl_logic::{Bdd, BddNode, TruthTable, Var};

use crate::equiv::{bdd_signature, netlist_bdds};
use crate::record::NetlistRecord;
use crate::VerifyError;

/// Largest mini-PRESENT round count enumerated by
/// [`VerifiedCircuit::all`].  One full round already exercises the key
/// mixing, every S-box and the pLayer wire permutation, and proves in
/// milliseconds; deeper datapaths verify too (`present2`, `present3`, …
/// parse fine) but the fixed plaintext-then-key input order makes the
/// intermediate BDDs grow steeply (two rounds peak above five million
/// nodes), so they are opt-in rather than part of the default sweep.
pub const MAX_VERIFIED_ROUNDS: usize = 1;

/// Inputs at or below this width are additionally swept exhaustively
/// against the software oracle (2^16 evaluations); wider circuits rely on
/// the BDD proof alone.
pub const MAX_EXHAUSTIVE_INPUTS: u32 = 16;

/// A circuit the verifier knows how to synthesize and independently model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifiedCircuit {
    /// The key-mixed PRESENT S-box datapath (8 inputs, 4 outputs).
    Sbox,
    /// A key-mixed single-cell datapath (8 inputs, one output per window).
    Cell(GateKind),
    /// The scaled-down multi-round PRESENT datapath (32 inputs, 16
    /// outputs).
    MiniPresent(usize),
}

impl VerifiedCircuit {
    /// Every circuit `repro` can capture: the S-box, all 18 library-cell
    /// datapaths, and mini-PRESENT at 1..=[`MAX_VERIFIED_ROUNDS`] rounds.
    pub fn all() -> Vec<VerifiedCircuit> {
        let mut circuits = vec![VerifiedCircuit::Sbox];
        circuits.extend(GateKind::all().iter().map(|&k| VerifiedCircuit::Cell(k)));
        circuits.extend((1..=MAX_VERIFIED_ROUNDS).map(VerifiedCircuit::MiniPresent));
        circuits
    }

    /// Parses a circuit name: `sbox`, a library-cell name (`oai22`, …), or
    /// `presentN` for an N-round mini-PRESENT.
    pub fn parse(name: &str) -> Option<VerifiedCircuit> {
        if name == "sbox" {
            return Some(VerifiedCircuit::Sbox);
        }
        if let Some(rounds) = name.strip_prefix("present") {
            return rounds
                .parse::<usize>()
                .ok()
                .filter(|&r| r >= 1)
                .map(VerifiedCircuit::MiniPresent);
        }
        GateKind::by_name(name).ok().map(VerifiedCircuit::Cell)
    }

    /// The canonical name ([`VerifiedCircuit::parse`] inverts it).
    pub fn name(&self) -> String {
        match self {
            VerifiedCircuit::Sbox => "sbox".to_string(),
            VerifiedCircuit::Cell(kind) => kind.name().to_ascii_lowercase(),
            VerifiedCircuit::MiniPresent(rounds) => format!("present{rounds}"),
        }
    }

    /// Synthesizes the netlist under verification.
    ///
    /// # Errors
    ///
    /// Propagates synthesis failures as [`VerifyError::Crypto`].
    pub fn netlist(&self) -> Result<GateNetlist, VerifyError> {
        match self {
            VerifiedCircuit::Sbox => synthesize_sbox_with_key(),
            VerifiedCircuit::Cell(kind) => synthesize_library_circuit(*kind),
            VerifiedCircuit::MiniPresent(rounds) => synthesize_present_rounds(*rounds),
        }
        .map_err(VerifyError::Crypto)
    }

    /// The software reference: the expected output word for a bit-packed
    /// input word, straight from the specification functions.
    pub fn oracle_eval(&self, input: u64) -> u64 {
        match self {
            VerifiedCircuit::Sbox => {
                let mixed = ((input ^ (input >> 4)) & 0xF) as u8;
                u64::from(present_sbox(mixed))
            }
            VerifiedCircuit::Cell(kind) => {
                let mixed = (input ^ (input >> 4)) & 0xF;
                let mut word = 0u64;
                for (bit, window) in library_circuit_windows(kind.arity()).iter().enumerate() {
                    let assignment = (mixed >> window.start) & ((1 << kind.arity()) - 1);
                    if kind.eval(assignment) {
                        word |= 1 << bit;
                    }
                }
                word
            }
            VerifiedCircuit::MiniPresent(rounds) => u64::from(mini_present(
                (input & 0xFFFF) as u16,
                ((input >> MINI_PRESENT_BITS) & 0xFFFF) as u16,
                *rounds,
            )),
        }
    }

    /// Builds the oracle's output functions symbolically, mirroring the
    /// *specification* (key mixing, S-box truth tables, the pLayer wire
    /// permutation) — deliberately not the synthesized gate structure, so a
    /// synthesis bug cannot cancel out of the comparison.
    ///
    /// # Errors
    ///
    /// Propagates truth-table construction failures as
    /// [`VerifyError::Logic`].
    pub fn oracle_bdds(&self, bdd: &mut Bdd) -> Result<Vec<BddNode>, VerifyError> {
        match self {
            VerifiedCircuit::Sbox => {
                let mixed = mixed_nibble(bdd);
                let tables = sbox_bit_tables()?;
                Ok(tables
                    .iter()
                    .map(|table| bdd.compose_table(table, &mixed))
                    .collect())
            }
            VerifiedCircuit::Cell(kind) => {
                let mixed = mixed_nibble(bdd);
                let table = TruthTable::from_fn(kind.arity(), |x| kind.eval(x))
                    .map_err(VerifyError::Logic)?;
                Ok(library_circuit_windows(kind.arity())
                    .into_iter()
                    .map(|window| bdd.compose_table(&table, &mixed[window]))
                    .collect())
            }
            VerifiedCircuit::MiniPresent(rounds) => {
                let key: Vec<BddNode> = (0..MINI_PRESENT_BITS)
                    .map(|bit| bdd.var(Var::new(MINI_PRESENT_BITS + bit)))
                    .collect();
                let round_key = |round: usize, bit: usize| {
                    key[(bit + MINI_PRESENT_BITS - (5 * round) % MINI_PRESENT_BITS)
                        % MINI_PRESENT_BITS]
                };
                let tables = sbox_bit_tables()?;
                let mut state: Vec<BddNode> = (0..MINI_PRESENT_BITS)
                    .map(|bit| bdd.var(Var::new(bit)))
                    .collect();
                for round in 0..*rounds {
                    let mixed: Vec<BddNode> = state
                        .iter()
                        .enumerate()
                        .map(|(bit, &s)| bdd.xor(s, round_key(round, bit)))
                        .collect();
                    let mut substituted = Vec::with_capacity(MINI_PRESENT_BITS);
                    for nibble in 0..4 {
                        let args = &mixed[4 * nibble..4 * nibble + 4];
                        for table in &tables {
                            substituted.push(bdd.compose_table(table, args));
                        }
                    }
                    let mut permuted = vec![substituted[0]; MINI_PRESENT_BITS];
                    for (bit, &s) in substituted.iter().enumerate() {
                        permuted[mini_p_layer_position(bit)] = s;
                    }
                    state = permuted;
                }
                Ok(state
                    .iter()
                    .enumerate()
                    .map(|(bit, &s)| bdd.xor(s, round_key(*rounds, bit)))
                    .collect())
            }
        }
    }
}

/// The key-mixed nibble functions `p_i ^ k_i` of the 8-input datapaths.
fn mixed_nibble(bdd: &mut Bdd) -> Vec<BddNode> {
    (0..4)
        .map(|bit| {
            let p = bdd.var(Var::new(bit));
            let k = bdd.var(Var::new(bit + 4));
            bdd.xor(p, k)
        })
        .collect()
}

/// The four output-bit truth tables of the PRESENT S-box.
fn sbox_bit_tables() -> Result<Vec<TruthTable>, VerifyError> {
    (0..4)
        .map(|bit| {
            TruthTable::from_fn(4, |x| (present_sbox(x as u8) >> bit) & 1 == 1)
                .map_err(VerifyError::Logic)
        })
        .collect()
}

/// The result of a successful equivalence proof.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceReport {
    /// Canonical circuit name.
    pub circuit: String,
    /// Primary input count.
    pub inputs: u32,
    /// Gate count of the synthesized netlist.
    pub gates: usize,
    /// Canonical structural signature of every output BDD.
    pub signatures: Vec<u64>,
    /// Model count (satisfying assignments over the primary inputs) of
    /// every output.
    pub sat_counts: Vec<u128>,
    /// Total decision nodes across the output BDDs (shared nodes counted
    /// once per output).
    pub bdd_nodes: usize,
    /// Number of inputs swept against the software oracle, when the width
    /// admitted an exhaustive sweep.
    pub exhaustive_inputs: Option<u64>,
}

/// Proves a circuit's synthesized netlist equivalent to its oracle: every
/// output BDD must be the *same canonical node* as the specification's, and
/// circuits at most [`MAX_EXHAUSTIVE_INPUTS`] wide are additionally swept
/// input-by-input against the software reference.
///
/// # Errors
///
/// [`VerifyError::NotEquivalent`] or [`VerifyError::OracleMismatch`] when a
/// divergence is found; synthesis and structural failures propagate.
pub fn prove_equivalent(circuit: &VerifiedCircuit) -> Result<EquivalenceReport, VerifyError> {
    let netlist = circuit.netlist()?;
    let record = NetlistRecord::from_netlist(&netlist);
    prove_record(circuit, &netlist, &record, None)
}

/// [`prove_equivalent`] with telemetry: the proof runs inside a
/// `verify.prove` span with BDD construction and signature/model-count
/// phases attributed separately; the proof count, wall-time histogram,
/// peak BDD node count and the manager's apply/unique-table work counters
/// are recorded into `obs`.
///
/// # Errors
///
/// Exactly those of [`prove_equivalent`].
pub fn prove_equivalent_observed(
    circuit: &VerifiedCircuit,
    obs: &dpl_obs::Obs,
) -> Result<EquivalenceReport, VerifyError> {
    use dpl_obs::names;
    let span = obs.span("verify.prove");
    let netlist = circuit.netlist()?;
    let record = NetlistRecord::from_netlist(&netlist);
    let report = prove_record(circuit, &netlist, &record, Some(obs))?;
    obs.counter_add(names::VERIFY_PROOFS, 1);
    obs.gauge_max(names::VERIFY_BDD_NODE_PEAK, report.bdd_nodes as f64);
    obs.record(names::VERIFY_PROOF_NS, span.finish());
    Ok(report)
}

/// [`prove_equivalent`] over an already-synthesized netlist and its record
/// form (the emit path reuses both).  With a telemetry context, BDD
/// construction runs under a `verify.bdd_build` phase, the structural
/// signatures and model counts under `verify.bdd_signature`, and the
/// manager's [`dpl_logic::BddStats`] flush into the `verify.bdd_*`
/// counters.
pub(crate) fn prove_record(
    circuit: &VerifiedCircuit,
    netlist: &GateNetlist,
    record: &NetlistRecord,
    obs: Option<&dpl_obs::Obs>,
) -> Result<EquivalenceReport, VerifyError> {
    use dpl_obs::names;
    let mut bdd = Bdd::new();
    let build_phase = obs.map(|o| o.phase("verify.bdd_build", names::VERIFY_BDD_BUILD_NS));
    let implementation = netlist_bdds(&mut bdd, record)?;
    let oracle = circuit.oracle_bdds(&mut bdd)?;
    drop(build_phase);
    if implementation.len() != oracle.len() {
        return Err(VerifyError::NotEquivalent {
            circuit: circuit.name(),
            output: oracle.len().min(implementation.len()),
        });
    }
    for (output, (imp, spec)) in implementation.iter().zip(&oracle).enumerate() {
        // Canonicity: same manager, same function ⇔ same node.
        if imp != spec {
            return Err(VerifyError::NotEquivalent {
                circuit: circuit.name(),
                output,
            });
        }
    }
    let exhaustive_inputs = if record.input_count <= MAX_EXHAUSTIVE_INPUTS {
        let sweep = 1u64 << record.input_count;
        for input in 0..sweep {
            let (found, _) = netlist.evaluate(input);
            let expected = circuit.oracle_eval(input);
            if found != expected {
                return Err(VerifyError::OracleMismatch {
                    circuit: circuit.name(),
                    input,
                    expected,
                    found,
                });
            }
        }
        Some(sweep)
    } else {
        None
    };
    let signature_phase =
        obs.map(|o| o.phase("verify.bdd_signature", names::VERIFY_BDD_SIGNATURE_NS));
    let signatures = implementation
        .iter()
        .map(|&node| bdd_signature(&bdd, node))
        .collect();
    let sat_counts = implementation
        .iter()
        .map(|&node| bdd.sat_count(node, record.input_count as usize))
        .collect();
    let bdd_nodes = implementation
        .iter()
        .map(|&node| bdd.node_count(node))
        .sum();
    drop(signature_phase);
    if let Some(obs) = obs {
        let stats = bdd.stats();
        obs.counter_add(names::VERIFY_BDD_APPLY_CALLS, stats.apply_calls);
        obs.counter_add(names::VERIFY_BDD_APPLY_MEMO_HITS, stats.apply_memo_hits);
        obs.counter_add(names::VERIFY_BDD_UNIQUE_LOOKUPS, stats.unique_lookups);
        obs.counter_add(names::VERIFY_BDD_UNIQUE_HITS, stats.unique_hits);
    }
    Ok(EquivalenceReport {
        circuit: circuit.name(),
        inputs: record.input_count,
        gates: record.gates.len(),
        signatures,
        sat_counts,
        bdd_nodes,
        exhaustive_inputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_name_round_trip() {
        for circuit in VerifiedCircuit::all() {
            assert_eq!(VerifiedCircuit::parse(&circuit.name()), Some(circuit));
        }
        assert_eq!(VerifiedCircuit::parse("nonsense"), None);
        assert_eq!(VerifiedCircuit::parse("present0"), None);
    }

    #[test]
    fn sbox_is_equivalent_to_its_oracle() {
        let report = prove_equivalent(&VerifiedCircuit::Sbox).unwrap();
        assert_eq!(report.inputs, 8);
        assert_eq!(report.signatures.len(), 4);
        assert_eq!(report.exhaustive_inputs, Some(256));
        // Each S-box output bit is balanced: 8 of 16 nibble values set the
        // bit, times 16 free assignments of the other nibble.
        for &count in &report.sat_counts {
            assert_eq!(count, 128);
        }
    }

    #[test]
    fn every_library_cell_datapath_is_equivalent() {
        for &kind in dpl_core::GateKind::all() {
            let report = prove_equivalent(&VerifiedCircuit::Cell(kind)).unwrap();
            assert_eq!(report.exhaustive_inputs, Some(256), "{}", kind.name());
        }
    }

    #[test]
    fn one_round_present_is_equivalent() {
        let report = prove_equivalent(&VerifiedCircuit::MiniPresent(1)).unwrap();
        assert_eq!(report.inputs, 32);
        assert_eq!(report.signatures.len(), 16);
        assert_eq!(report.exhaustive_inputs, None);
        // Every output of the keyed permutation is balanced.
        for &count in &report.sat_counts {
            assert_eq!(count, 1u128 << 31);
        }
    }

    #[test]
    fn a_wrong_oracle_is_detected() {
        // Verify the S-box netlist against the *two*-round present oracle's
        // name — i.e. against a deliberately wrong specification.
        let netlist = VerifiedCircuit::Sbox.netlist().unwrap();
        let record = NetlistRecord::from_netlist(&netlist);
        let wrong = VerifiedCircuit::Cell(GateKind::And2);
        let result = prove_record(&wrong, &netlist, &record, None);
        assert!(matches!(result, Err(VerifyError::NotEquivalent { .. })));
    }

    #[test]
    fn a_corrupted_netlist_fails_the_proof() {
        let netlist = VerifiedCircuit::Sbox.netlist().unwrap();
        let mut record = NetlistRecord::from_netlist(&netlist);
        // Flip the consumed rail of one gate: still a perfectly structured
        // DPL netlist, but a different function.
        record.gates[5].rail ^= 1;
        let result = prove_record(&VerifiedCircuit::Sbox, &netlist, &record, None);
        assert!(matches!(result, Err(VerifyError::NotEquivalent { .. })));
    }
}

//! Symbolic netlist evaluation and canonical BDD signatures.

use std::collections::HashMap;

use dpl_logic::{Bdd, BddNode, TruthTable, Var};
use dpl_store::format::fnv1a64;

use crate::record::NetlistRecord;
use crate::VerifyError;

/// Builds the BDD of every circuit output of a netlist record by symbolic
/// simulation: primary input `i` carries BDD variable `i`, and each gate's
/// output function is the claimed rail's truth table composed over its
/// input functions ([`Bdd::compose_table`]).
///
/// The walk trusts nothing about the record beyond what it re-checks:
/// undefined signals and redefinitions are reported as
/// [`VerifyError::Structure`] (the linter gives the same defects friendlier
/// typed diagnostics; this is the independent backstop on the replay path).
///
/// # Errors
///
/// Returns [`VerifyError::Structure`] when a gate consumes or redefines a
/// signal in a way that makes symbolic evaluation impossible.
pub fn netlist_bdds(bdd: &mut Bdd, record: &NetlistRecord) -> Result<Vec<BddNode>, VerifyError> {
    let mut wires: HashMap<u32, BddNode> = HashMap::new();
    for i in 0..record.input_count {
        let node = bdd.var(Var::new(i as usize));
        wires.insert(i, node);
    }
    for (position, gate) in record.gates.iter().enumerate() {
        let arity = gate.inputs.len();
        let mut args = Vec::with_capacity(arity);
        for &input in &gate.inputs {
            args.push(*wires.get(&input).ok_or_else(|| VerifyError::Structure {
                message: format!("gate {position} reads undefined signal {input}"),
            })?);
        }
        let table = rail_table(gate.consumed_table(), arity)?;
        let out = bdd.compose_table(&table, &args);
        if wires.insert(gate.out, out).is_some() {
            return Err(VerifyError::Structure {
                message: format!("gate {position} redefines signal {}", gate.out),
            });
        }
    }
    record
        .outputs
        .iter()
        .map(|signal| {
            wires
                .get(signal)
                .copied()
                .ok_or_else(|| VerifyError::Structure {
                    message: format!("circuit output {signal} is undefined"),
                })
        })
        .collect()
}

/// Expands a bit-packed rail truth table into a dense [`TruthTable`].
fn rail_table(bits: u16, arity: usize) -> Result<TruthTable, VerifyError> {
    TruthTable::from_fn(arity, |row| (bits >> row) & 1 == 1).map_err(VerifyError::Logic)
}

/// A canonical, manager-independent structural digest of a BDD: FNV-1a over
/// the node's variable and the signatures of its children, computed
/// bottom-up over the shared graph.  Two functions have equal signatures
/// exactly when their reduced ordered BDDs are structurally identical —
/// i.e. when they are the same Boolean function under the natural variable
/// order — so a certificate can commit to an output function without
/// serialising the diagram.
pub fn bdd_signature(bdd: &Bdd, node: BddNode) -> u64 {
    let mut memo: HashMap<BddNode, u64> = HashMap::new();
    signature_rec(bdd, node, &mut memo)
}

fn signature_rec(bdd: &Bdd, node: BddNode, memo: &mut HashMap<BddNode, u64>) -> u64 {
    if let Some(&sig) = memo.get(&node) {
        return sig;
    }
    let sig = match bdd.node(node) {
        None => fnv1a64(if bdd.as_constant(node) == Some(true) {
            b"bdd:T"
        } else {
            b"bdd:F"
        }),
        Some((var, low, high)) => {
            let low_sig = signature_rec(bdd, low, memo);
            let high_sig = signature_rec(bdd, high, memo);
            let mut bytes = [0u8; 21];
            bytes[0] = b'N';
            bytes[1..5].copy_from_slice(&(var.index() as u32).to_le_bytes());
            bytes[5..13].copy_from_slice(&low_sig.to_le_bytes());
            bytes[13..21].copy_from_slice(&high_sig.to_le_bytes());
            fnv1a64(&bytes)
        }
    };
    memo.insert(node, sig);
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NetlistRecord;

    #[test]
    fn sbox_netlist_bdds_match_scalar_evaluation() {
        let netlist = dpl_crypto::synthesize_sbox_with_key().unwrap();
        let record = NetlistRecord::from_netlist(&netlist);
        let mut bdd = Bdd::new();
        let outputs = netlist_bdds(&mut bdd, &record).unwrap();
        assert_eq!(outputs.len(), 4);
        for input in 0..256u64 {
            let (expected, _) = netlist.evaluate(input);
            let mut word = 0u64;
            for (bit, &node) in outputs.iter().enumerate() {
                if bdd.eval(node, input) {
                    word |= 1 << bit;
                }
            }
            assert_eq!(
                word, expected,
                "symbolic/scalar divergence at input {input:02x}"
            );
        }
    }

    #[test]
    fn signature_distinguishes_functions_and_is_stable_across_managers() {
        let netlist = dpl_crypto::synthesize_sbox_with_key().unwrap();
        let record = NetlistRecord::from_netlist(&netlist);
        let mut first = Bdd::new();
        let a = netlist_bdds(&mut first, &record).unwrap();
        // A fresh manager with different allocation history must produce
        // identical signatures for the same functions.
        let mut second = Bdd::new();
        let noise = dpl_logic::parse_expr("A.B+C.!D").unwrap().0;
        let _ = second.from_expr(&noise);
        let b = netlist_bdds(&mut second, &record).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(bdd_signature(&first, *x), bdd_signature(&second, *y));
        }
        // Distinct output bits are distinct functions with distinct digests.
        assert_ne!(bdd_signature(&first, a[0]), bdd_signature(&first, a[1]));
        // Constants have distinct signatures too.
        let t = first.constant(true);
        let f = first.constant(false);
        assert_ne!(bdd_signature(&first, t), bdd_signature(&first, f));
    }

    #[test]
    fn undefined_signal_is_a_structure_error() {
        let netlist = dpl_crypto::synthesize_library_circuit(dpl_core::GateKind::And2).unwrap();
        let mut record = NetlistRecord::from_netlist(&netlist);
        record.gates[0].inputs[0] = 500;
        let mut bdd = Bdd::new();
        assert!(matches!(
            netlist_bdds(&mut bdd, &record),
            Err(VerifyError::Structure { .. })
        ));
    }
}

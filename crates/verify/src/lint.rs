//! The DPL security linter.
//!
//! The paper's constant-power argument is conditional on structural
//! properties of the synthesized netlist: every gate instantiates a genuine
//! library SABL cell, both rails of every differential pair are present and
//! complementary, the gate graph is acyclic single-assignment with no
//! dangling wires, and the per-gate event energies of the cells actually
//! used are input-independent.  The linter re-establishes each property on
//! the untrusted [`NetlistRecord`] form and reports one typed
//! [`LintError`] per violation.

use std::fmt;

use dpl_core::GateKind;
use dpl_crypto::{GateEnergyTable, GateNetlist, GateOp};

use crate::record::{table_mask, NetlistRecord, RAIL_COMPLEMENT, RAIL_PLAIN};

/// A violation of the DPL structural security contract.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LintError {
    /// A gate claims a cell outside the standard library, or its rail truth
    /// tables do not implement the claimed cell.
    UnknownCell {
        /// Position of the offending gate in the gate list.
        gate: usize,
        /// The claimed library cell index.
        cell: u8,
    },
    /// The two rails of a differential pair are not complementary, or are
    /// swapped with respect to the claimed cell.
    UnbalancedRails {
        /// Position of the offending gate in the gate list.
        gate: usize,
        /// What is wrong with the pair.
        detail: String,
    },
    /// A cell the netlist instantiates has input-dependent event energies
    /// beyond the admitted tolerance — the constant-power premise fails.
    NonConstantEvents {
        /// Name of the leaky library cell.
        cell: String,
        /// Measured relative energy spread (max−min over mean), or infinite
        /// when the energy facts carry no row for the cell.
        spread: f64,
    },
    /// A signal is consumed or exported but never driven.
    DanglingWire {
        /// The undriven signal id.
        signal: u32,
        /// Where the signal is referenced.
        location: String,
    },
    /// A gate reads a signal that is only defined by itself or a later gate
    /// (the claimed evaluation order is not topological), or redefines an
    /// already-driven wire.
    CombinationalCycle {
        /// Position of the offending gate in the gate list.
        gate: usize,
        /// The back- or self-referencing signal id.
        signal: u32,
    },
    /// The energy table the netlist is claimed to run under does not match
    /// the recorded digest.
    EnergyDigestMismatch {
        /// Digest the certificate (or caller) expected.
        expected: u64,
        /// Digest of the table actually supplied.
        actual: u64,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::UnknownCell { gate, cell } => {
                write!(f, "gate {gate}: cell index {cell} is not a library cell (or the rail tables do not implement it)")
            }
            LintError::UnbalancedRails { gate, detail } => {
                write!(f, "gate {gate}: unbalanced differential rails: {detail}")
            }
            LintError::NonConstantEvents { cell, spread } => {
                write!(
                    f,
                    "cell {cell}: event energies are input-dependent (relative spread {spread:.3e})"
                )
            }
            LintError::DanglingWire { signal, location } => {
                write!(
                    f,
                    "signal {signal} is never driven (referenced by {location})"
                )
            }
            LintError::CombinationalCycle { gate, signal } => {
                write!(
                    f,
                    "gate {gate}: signal {signal} breaks topological order (cycle or redefinition)"
                )
            }
            LintError::EnergyDigestMismatch { expected, actual } => {
                write!(
                    f,
                    "energy table digest mismatch: expected {expected:016x}, got {actual:016x}"
                )
            }
        }
    }
}

impl std::error::Error for LintError {}

/// The energy-model evidence the event-constancy lint runs against: which
/// table the netlist is claimed to run under, and the per-cell event rows
/// for the cells it uses.
///
/// On the emit path the facts are extracted from a live
/// [`GateEnergyTable`]; on the certificate-check path they are parsed back
/// out of the certificate itself, so the replay needs no synthesis or cell
/// simulation code.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyFacts {
    /// Canonical name of the energy model (`enhanced`, `fc-charac`, …).
    pub model: String,
    /// [`GateEnergyTable::digest`] of the full table.
    pub digest: u64,
    /// Maximum admitted relative event-energy spread per cell.  The
    /// built-in SABL models are exactly constant (tolerance 0 works); the
    /// transient-characterized models carry residual simulator spread and
    /// must be granted an explicit tolerance, which the certificate
    /// records.
    pub tolerance: f64,
    /// Per-cell event energies: `(cell index, energies of the 2^arity
    /// input events)`.
    pub rows: Vec<(u8, Vec<f64>)>,
}

impl EnergyFacts {
    /// Extracts the facts for the cells `netlist` instantiates from a live
    /// energy table.
    pub fn from_table(table: &GateEnergyTable, netlist: &GateNetlist, tolerance: f64) -> Self {
        let rows = netlist
            .kinds_used()
            .into_iter()
            .map(|kind| {
                let events = table.event_energies(GateOp::cell(kind));
                (kind.index() as u8, events[..1 << kind.arity()].to_vec())
            })
            .collect();
        EnergyFacts {
            model: table.model().name(),
            digest: table.digest(),
            tolerance,
            rows,
        }
    }

    /// The event row recorded for a cell index, if any.
    pub fn row(&self, cell: u8) -> Option<&[f64]> {
        self.rows
            .iter()
            .find(|(index, _)| *index == cell)
            .map(|(_, events)| events.as_slice())
    }
}

/// Runs the structural lints (library membership, rail pairing, topological
/// well-formedness) over a netlist record.
pub fn lint_structure(record: &NetlistRecord) -> Vec<LintError> {
    let mut errors = Vec::new();
    let signal_span = record.input_count as usize + record.gates.len();
    let mut defined = vec![false; signal_span.max(record.input_count as usize)];
    for slot in defined.iter_mut().take(record.input_count as usize) {
        *slot = true;
    }
    // First pass: which signals are driven by *some* gate (for
    // cycle-vs-dangling classification) — a forward reference is a cycle,
    // a reference to a never-driven id is a dangling wire.
    let mut driven_somewhere = defined.clone();
    for gate in &record.gates {
        if let Some(slot) = driven_somewhere.get_mut(gate.out as usize) {
            *slot = true;
        }
    }

    for (position, gate) in record.gates.iter().enumerate() {
        errors.extend(lint_gate_cell(position, gate));
        for &input in &gate.inputs {
            match defined.get(input as usize) {
                Some(true) => {}
                Some(false) if driven_somewhere[input as usize] => {
                    errors.push(LintError::CombinationalCycle {
                        gate: position,
                        signal: input,
                    });
                }
                _ => errors.push(LintError::DanglingWire {
                    signal: input,
                    location: format!("gate {position}"),
                }),
            }
        }
        match defined.get_mut(gate.out as usize) {
            Some(slot) if !*slot => *slot = true,
            // Redefinition of an input or an earlier gate's wire, or an
            // output id outside the dense signal span.
            Some(_) => errors.push(LintError::CombinationalCycle {
                gate: position,
                signal: gate.out,
            }),
            None => errors.push(LintError::DanglingWire {
                signal: gate.out,
                location: format!("gate {position} output (outside the signal span)"),
            }),
        }
    }

    for &output in &record.outputs {
        if !matches!(defined.get(output as usize), Some(true)) {
            errors.push(LintError::DanglingWire {
                signal: output,
                location: "circuit outputs".to_string(),
            });
        }
    }
    errors
}

/// Library-membership and rail-pairing checks of one gate record.
fn lint_gate_cell(position: usize, gate: &crate::record::GateRecord) -> Vec<LintError> {
    let mut errors = Vec::new();
    if gate.rail != RAIL_PLAIN && gate.rail != RAIL_COMPLEMENT {
        errors.push(LintError::UnbalancedRails {
            gate: position,
            detail: format!("rail selector {} out of range", gate.rail),
        });
    }
    let cell = usize::from(gate.cell);
    if cell >= GateKind::COUNT {
        errors.push(LintError::UnknownCell {
            gate: position,
            cell: gate.cell,
        });
        return errors;
    }
    let kind = GateKind::all()[cell];
    if gate.inputs.len() != kind.arity() {
        errors.push(LintError::UnknownCell {
            gate: position,
            cell: gate.cell,
        });
        return errors;
    }
    let mask = table_mask(kind.arity());
    let library = kind.truth_table() & mask;
    let complement = !library & mask;
    let plain = gate.rails[0] & mask;
    let comp = gate.rails[1] & mask;
    if plain == library && comp == complement {
        return errors; // well-formed differential pair
    }
    if plain == complement && comp == library {
        errors.push(LintError::UnbalancedRails {
            gate: position,
            detail: format!("rails of {} are swapped", kind.name()),
        });
    } else if comp != (!plain & mask) {
        errors.push(LintError::UnbalancedRails {
            gate: position,
            detail: format!("complement rail {comp:04x} is not the complement of {plain:04x}"),
        });
    } else {
        // A complementary pair, but not the claimed library function.
        errors.push(LintError::UnknownCell {
            gate: position,
            cell: gate.cell,
        });
    }
    errors
}

/// Runs the energy lints: per-cell event constancy against the supplied
/// facts, and (optionally) the energy-table digest commitment.
pub fn lint_energy(
    record: &NetlistRecord,
    facts: &EnergyFacts,
    expected_digest: Option<u64>,
) -> Vec<LintError> {
    let mut errors = Vec::new();
    if let Some(expected) = expected_digest {
        if expected != facts.digest {
            errors.push(LintError::EnergyDigestMismatch {
                expected,
                actual: facts.digest,
            });
        }
    }
    for kind in record.kinds_claimed() {
        match facts.row(kind.index() as u8) {
            Some(events) if !events.is_empty() => {
                let spread = relative_spread(events);
                if spread > facts.tolerance {
                    errors.push(LintError::NonConstantEvents {
                        cell: kind.name().to_string(),
                        spread,
                    });
                }
            }
            _ => errors.push(LintError::NonConstantEvents {
                cell: kind.name().to_string(),
                spread: f64::INFINITY,
            }),
        }
    }
    errors
}

/// Runs every lint: structure always, energy when facts are supplied.
pub fn lint(record: &NetlistRecord, energy: Option<(&EnergyFacts, Option<u64>)>) -> Vec<LintError> {
    let mut errors = lint_structure(record);
    if let Some((facts, expected)) = energy {
        errors.extend(lint_energy(record, facts, expected));
    }
    errors
}

/// Relative spread `(max − min) / mean` of a set of event energies; `0` for
/// a constant row (including the all-zero row of the Hamming-weight style's
/// zero-energy events).
fn relative_spread(events: &[f64]) -> f64 {
    let max = events.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = events.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = events.iter().copied().sum::<f64>() / events.len() as f64;
    if max == min {
        return 0.0;
    }
    if mean.abs() < f64::MIN_POSITIVE {
        return f64::INFINITY;
    }
    (max - min) / mean.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::GateRecord;

    fn clean_record() -> NetlistRecord {
        let netlist = dpl_crypto::synthesize_library_circuit(GateKind::Oai22).unwrap();
        NetlistRecord::from_netlist(&netlist)
    }

    #[test]
    fn synthesized_netlists_lint_clean() {
        assert!(lint_structure(&clean_record()).is_empty());
    }

    #[test]
    fn swapped_rails_are_unbalanced() {
        let mut record = clean_record();
        record.gates[3].rails.swap(0, 1);
        let errors = lint_structure(&record);
        assert!(
            matches!(&errors[..], [LintError::UnbalancedRails { gate: 3, .. }]),
            "unexpected diagnostics: {errors:?}"
        );
    }

    #[test]
    fn corrupted_complement_rail_is_unbalanced() {
        let mut record = clean_record();
        record.gates[0].rails[1] ^= 0b1;
        let errors = lint_structure(&record);
        assert!(
            matches!(&errors[..], [LintError::UnbalancedRails { gate: 0, .. }]),
            "unexpected diagnostics: {errors:?}"
        );
    }

    #[test]
    fn swapped_kind_is_an_unknown_cell() {
        let mut record = clean_record();
        // Find a 2-input cell and claim it is a different 2-input cell while
        // keeping the (still complementary) rail tables.
        let position = record
            .gates
            .iter()
            .position(|g| g.inputs.len() == 2)
            .expect("circuit has a 2-input gate");
        let current = record.gates[position].cell;
        let other = GateKind::all()
            .iter()
            .find(|k| k.arity() == 2 && k.index() as u8 != current)
            .unwrap();
        record.gates[position].cell = other.index() as u8;
        let errors = lint_structure(&record);
        assert!(
            matches!(&errors[..], [LintError::UnknownCell { gate, .. }] if *gate == position),
            "unexpected diagnostics: {errors:?}"
        );
    }

    #[test]
    fn out_of_library_index_is_an_unknown_cell() {
        let mut record = clean_record();
        record.gates[1].cell = GateKind::COUNT as u8 + 7;
        let errors = lint_structure(&record);
        assert!(matches!(
            &errors[..],
            [LintError::UnknownCell { gate: 1, .. }]
        ));
    }

    #[test]
    fn dropped_gate_leaves_a_dangling_wire() {
        let mut record = clean_record();
        // Drop a mid-netlist gate whose output someone consumes.
        let victim = record.gates.len() / 2;
        let signal = record.gates[victim].out;
        record.gates.remove(victim);
        let errors = lint_structure(&record);
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, LintError::DanglingWire { signal: s, .. } if *s == signal)),
            "expected a dangling wire on signal {signal}, got {errors:?}"
        );
    }

    #[test]
    fn forward_reference_is_a_cycle() {
        let mut record = clean_record();
        let last_out = record.gates.last().unwrap().out;
        record.gates[0].inputs[0] = last_out;
        let errors = lint_structure(&record);
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, LintError::CombinationalCycle { gate: 0, signal } if *signal == last_out)),
            "expected a cycle diagnostic, got {errors:?}"
        );
    }

    #[test]
    fn redefined_wire_is_a_cycle() {
        let mut record = clean_record();
        let first_out = record.gates[0].out;
        let last = record.gates.len() - 1;
        record.gates[last].out = first_out;
        let errors = lint_structure(&record);
        assert!(errors
            .iter()
            .any(|e| matches!(e, LintError::CombinationalCycle { gate, signal } if *gate == last && *signal == first_out)));
    }

    #[test]
    fn undriven_circuit_output_is_dangling() {
        let mut record = clean_record();
        record.outputs.push(9999);
        let errors = lint_structure(&record);
        assert!(errors
            .iter()
            .any(|e| matches!(e, LintError::DanglingWire { signal: 9999, .. })));
    }

    #[test]
    fn self_reference_is_a_cycle() {
        let mut record = clean_record();
        let out = record.gates[0].out;
        record.gates[0].inputs[0] = out;
        let errors = lint_structure(&record);
        assert!(errors.iter().any(
            |e| matches!(e, LintError::CombinationalCycle { gate: 0, signal } if *signal == out)
        ));
    }

    #[test]
    fn constant_power_model_passes_energy_lint() {
        let netlist = dpl_crypto::synthesize_sbox_with_key().unwrap();
        let record = NetlistRecord::from_netlist(&netlist);
        let cap = dpl_cells::CapacitanceModel::default();
        let table = GateEnergyTable::builtin(dpl_crypto::LeakageModel::EnhancedSabl, &cap).unwrap();
        let facts = EnergyFacts::from_table(&table, &netlist, 1e-9);
        assert!(lint_energy(&record, &facts, Some(table.digest())).is_empty());
        // A wrong digest commitment is reported.
        let errors = lint_energy(&record, &facts, Some(table.digest() ^ 1));
        assert!(matches!(
            &errors[..],
            [LintError::EnergyDigestMismatch { .. }]
        ));
    }

    #[test]
    fn leaky_model_fails_the_event_constancy_lint() {
        let netlist = dpl_crypto::synthesize_sbox_with_key().unwrap();
        let record = NetlistRecord::from_netlist(&netlist);
        let cap = dpl_cells::CapacitanceModel::default();
        let table = GateEnergyTable::builtin(dpl_crypto::LeakageModel::GenuineSabl, &cap).unwrap();
        let facts = EnergyFacts::from_table(&table, &netlist, 1e-9);
        let errors = lint_energy(&record, &facts, None);
        assert!(
            errors
                .iter()
                .all(|e| matches!(e, LintError::NonConstantEvents { .. }))
                && !errors.is_empty(),
            "genuine SABL must fail event constancy, got {errors:?}"
        );
    }

    #[test]
    fn missing_event_row_is_reported_as_unbounded_spread() {
        let record = NetlistRecord {
            input_count: 2,
            gates: vec![GateRecord {
                cell: GateKind::And2.index() as u8,
                rail: 0,
                rails: [
                    GateKind::And2.truth_table() & 0xF,
                    !GateKind::And2.truth_table() & 0xF,
                ],
                inputs: vec![0, 1],
                out: 2,
            }],
            outputs: vec![2],
        };
        let facts = EnergyFacts {
            model: "enhanced".to_string(),
            digest: 0,
            tolerance: 0.0,
            rows: Vec::new(),
        };
        let errors = lint_energy(&record, &facts, None);
        assert!(matches!(
            &errors[..],
            [LintError::NonConstantEvents { spread, .. }] if spread.is_infinite()
        ));
    }
}

//! `dpl-verify` — emit, check and prove DPL security certificates.
//!
//! ```text
//! dpl-verify emit <circuit> [--model <name>] [--tolerance <t>] [--out <path>]
//! dpl-verify check <path>...
//! dpl-verify prove <circuit>|all
//! ```
//!
//! `emit` synthesizes the circuit, runs the security lint, proves every
//! output equivalent to the specification oracle and writes the
//! certificate (stdout by default).  `check` replays certificates from
//! their bytes alone.  `prove` runs the equivalence proof without
//! producing a certificate.

use std::process::ExitCode;

use dpl_verify::{
    check_certificate, emit_certificate, prove_equivalent, CertificateRequest, VerifiedCircuit,
};

const USAGE: &str = "usage:
  dpl-verify emit <circuit> [--model <name>] [--tolerance <t>] [--out <path>]
  dpl-verify check <path>...
  dpl-verify prove <circuit>|all

circuits: sbox, presentN (N >= 1), or a library cell name (and2, oai22, ...)
models:   hw, genuine, fc, enhanced, each optionally -charac";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("emit") => emit(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("prove") => prove(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

fn emit(args: &[String]) -> Result<(), String> {
    let mut circuit: Option<&str> = None;
    let mut model = "enhanced".to_string();
    let mut tolerance: Option<f64> = None;
    let mut out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--model" => model = required(iter.next(), "--model")?.clone(),
            "--tolerance" => {
                let raw = required(iter.next(), "--tolerance")?;
                tolerance = Some(
                    raw.parse()
                        .map_err(|_| format!("unreadable tolerance '{raw}'"))?,
                );
            }
            "--out" => out = Some(required(iter.next(), "--out")?.clone()),
            name if circuit.is_none() => circuit = Some(name),
            extra => return Err(format!("unexpected argument '{extra}'\n{USAGE}")),
        }
    }
    let circuit = circuit.ok_or_else(|| format!("missing circuit name\n{USAGE}"))?;
    let mut request = CertificateRequest::parse(circuit, &model).map_err(|e| e.to_string())?;
    if let Some(tolerance) = tolerance {
        request = request.with_tolerance(tolerance);
    }
    let certificate = emit_certificate(&request).map_err(|e| e.to_string())?;
    let text = certificate.to_text();
    match out {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "certified {} under {}: {} gate(s), {} output(s) -> {path}",
                certificate.circuit,
                certificate.model,
                certificate.record.gates.len(),
                certificate.record.outputs.len()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn check(paths: &[String]) -> Result<(), String> {
    if paths.is_empty() {
        return Err(format!("missing certificate path\n{USAGE}"));
    }
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let report = check_certificate(&text).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: OK circuit={} model={} inputs={} gates={} outputs={} bdd_nodes={}",
            report.circuit,
            report.model,
            report.inputs,
            report.gates,
            report.outputs,
            report.bdd_nodes
        );
    }
    Ok(())
}

fn prove(args: &[String]) -> Result<(), String> {
    let name = args
        .first()
        .ok_or_else(|| format!("missing circuit name\n{USAGE}"))?;
    let circuits = if name == "all" {
        VerifiedCircuit::all()
    } else {
        vec![VerifiedCircuit::parse(name).ok_or_else(|| format!("unknown circuit '{name}'"))?]
    };
    for circuit in &circuits {
        let report = prove_equivalent(circuit).map_err(|e| e.to_string())?;
        let sweep = match report.exhaustive_inputs {
            Some(n) => format!(", {n} inputs swept"),
            None => String::new(),
        };
        println!(
            "{}: equivalent ({} gates, {} outputs, {} BDD nodes{sweep})",
            report.circuit,
            report.gates,
            report.signatures.len(),
            report.bdd_nodes
        );
    }
    println!("{} circuit(s) proven equivalent", circuits.len());
    Ok(())
}

fn required<'a>(value: Option<&'a String>, flag: &str) -> Result<&'a String, String> {
    value.ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
}

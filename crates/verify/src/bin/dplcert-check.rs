//! `dplcert-check` — the lean certificate validator.
//!
//! Replays one or more certificates from their bytes alone: checksum, gate
//! digest, security lints, and the symbolic reconstruction of every output
//! function against the claimed signatures and model counts.  This binary
//! deliberately calls nothing but [`dpl_verify::check_certificate`] — no
//! synthesis, no cell simulation — in the validator-as-separate-binary
//! style, so a verdict never depends on the code that emitted the claim.
//!
//! Exit status is non-zero if any certificate fails, and a single
//! corrupted byte fails the replay.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: dplcert-check <certificate>...");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failures += 1;
            }
            Ok(text) => match dpl_verify::check_certificate(&text) {
                Ok(report) => println!(
                    "{path}: OK circuit={} model={} outputs={}",
                    report.circuit, report.model, report.outputs
                ),
                Err(e) => {
                    eprintln!("{path}: FAILED: {e}");
                    failures += 1;
                }
            },
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Replayable security certificates.
//!
//! A certificate is a deterministic, line-oriented text record of everything
//! the verifier established about one circuit: the full gate list (the
//! untrusted evidence), its digest, the canonical BDD signature and model
//! count of every output, the lint verdicts, and the energy-model
//! commitment (table digest plus the per-cell event rows the constancy lint
//! ran against).  A trailing FNV-1a checksum covers every preceding byte.
//!
//! [`check_certificate`] replays a certificate from its bytes alone: it
//! re-hashes the file, re-lints the embedded gate list, rebuilds every
//! output BDD symbolically and compares signatures and model counts against
//! the claims.  The replay path deliberately never calls the synthesis or
//! cell-simulation code — a checker binary stays lean and independent of
//! the code that produced the claim, in the validator-as-separate-binary
//! style.  Floating-point energies are serialized as exact bit patterns, so
//! the replay is bit-reproducible.

use std::fmt::Write as _;

use dpl_cells::CapacitanceModel;
use dpl_crypto::{EnergyModel, GateEnergyTable};
use dpl_store::format::fnv1a64;

use crate::circuit::{prove_record, VerifiedCircuit};
use crate::equiv::{bdd_signature, netlist_bdds};
use crate::lint::{lint_energy, lint_structure, EnergyFacts};
use crate::record::{GateRecord, NetlistRecord};
use crate::VerifyError;

/// Certificate format version emitted and accepted by this crate.
pub const CERT_VERSION: u32 = 1;

/// The verdict line of a certificate; `emit` refuses to produce a
/// certificate for a netlist or model that does not earn it.
pub const CLEAN_VERDICT: &str =
    "cells=library rails=balanced topology=ordered wires=driven events=constant";

const MAGIC: &str = "DPLCERT";

/// What to certify: a circuit, an energy model, and the event-constancy
/// tolerance the certificate is granted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CertificateRequest {
    /// The circuit under verification.
    pub circuit: VerifiedCircuit,
    /// The energy model whose table the certificate commits to.
    pub model: EnergyModel,
    /// Maximum admitted relative per-cell event-energy spread.  The
    /// built-in SABL tables are exactly constant, so the strict default
    /// works; transient-characterized tables carry residual simulator
    /// spread and must be granted an explicit tolerance (which the
    /// certificate records — the grant is part of the attestation).
    pub tolerance: f64,
}

impl CertificateRequest {
    /// Strictest default tolerance: admits only bit-identical event rows
    /// (up to floating-point noise).
    pub const STRICT_TOLERANCE: f64 = 1e-9;

    /// Parses a circuit name and an energy-model name.
    ///
    /// # Errors
    ///
    /// [`VerifyError::UnknownCircuit`] / [`VerifyError::UnknownModel`] for
    /// unrecognized names.
    pub fn parse(circuit: &str, model: &str) -> crate::Result<Self> {
        let circuit =
            VerifiedCircuit::parse(circuit).ok_or_else(|| VerifyError::UnknownCircuit {
                name: circuit.to_string(),
            })?;
        let model = EnergyModel::parse(model).ok_or_else(|| VerifyError::UnknownModel {
            name: model.to_string(),
        })?;
        Ok(CertificateRequest {
            circuit,
            model,
            tolerance: Self::STRICT_TOLERANCE,
        })
    }

    /// Grants a different event-constancy tolerance.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }
}

/// A fully-populated certificate, ready to serialize or already parsed
/// back from text.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Canonical circuit name.
    pub circuit: String,
    /// Canonical energy-model name.
    pub model: String,
    /// The embedded (untrusted, replayable) gate list.
    pub record: NetlistRecord,
    /// [`NetlistRecord::digest`] of the embedded gate list.
    pub gate_digest: u64,
    /// Canonical BDD signature of every output, in output order.
    pub signatures: Vec<u64>,
    /// Model count of every output over the primary inputs.
    pub sat_counts: Vec<u128>,
    /// [`GateEnergyTable::digest`] of the committed energy table.
    pub energy_digest: u64,
    /// Granted event-constancy tolerance.
    pub tolerance: f64,
    /// Per-cell event-energy rows the constancy lint ran against.
    pub events: Vec<(u8, Vec<f64>)>,
}

/// The replay summary returned by a successful [`check_certificate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Canonical circuit name.
    pub circuit: String,
    /// Canonical energy-model name.
    pub model: String,
    /// Primary input count.
    pub inputs: u32,
    /// Gates replayed.
    pub gates: usize,
    /// Outputs whose signatures and model counts were re-established.
    pub outputs: usize,
    /// Total decision nodes across the replayed output BDDs.
    pub bdd_nodes: usize,
}

/// [`emit_certificate`] with telemetry: synthesis + lint + proof +
/// certification run inside a `verify.emit_certificate` span; the proof and
/// certificate counts and the proof wall-time histogram are recorded into
/// `obs`.
///
/// # Errors
///
/// Exactly those of [`emit_certificate`].
pub fn emit_certificate_observed(
    request: &CertificateRequest,
    obs: &dpl_obs::Obs,
) -> crate::Result<Certificate> {
    use dpl_obs::names;
    let span = obs.span("verify.emit_certificate");
    let certificate = emit_certificate_with(request, Some(obs))?;
    obs.counter_add(names::VERIFY_PROOFS, 1);
    obs.counter_add(names::VERIFY_CERTIFICATES, 1);
    obs.record(names::VERIFY_PROOF_NS, span.finish());
    Ok(certificate)
}

/// [`check_certificate`] with telemetry: the replay runs inside a
/// `verify.check_certificate` span; the replay count and the peak replayed
/// BDD node count are recorded into `obs`.
///
/// # Errors
///
/// Exactly those of [`check_certificate`].
pub fn check_certificate_observed(text: &str, obs: &dpl_obs::Obs) -> crate::Result<CheckReport> {
    use dpl_obs::names;
    let span = obs.span("verify.check_certificate");
    let report = check_certificate(text)?;
    obs.counter_add(names::VERIFY_REPLAYS, 1);
    obs.gauge_max(names::VERIFY_BDD_NODE_PEAK, report.bdd_nodes as f64);
    span.finish();
    Ok(report)
}

/// Synthesizes, lints, proves, and certifies a circuit.
///
/// The certificate is only produced when the netlist passes the full
/// security lint under the requested model *and* every output is proven
/// equivalent to the specification oracle — an emitted certificate **is**
/// the attestation, so a leaky model (e.g. `genuine`) or a broken netlist
/// yields an error, not a certificate with failing verdicts.
///
/// # Errors
///
/// [`VerifyError::Lint`] when the security lint rejects the circuit or
/// model; equivalence and synthesis failures propagate.
pub fn emit_certificate(request: &CertificateRequest) -> crate::Result<Certificate> {
    emit_certificate_with(request, None)
}

/// [`emit_certificate`] with an optional telemetry context threaded into
/// the proof (the BDD build/signature phases and work counters).
fn emit_certificate_with(
    request: &CertificateRequest,
    obs: Option<&dpl_obs::Obs>,
) -> crate::Result<Certificate> {
    let netlist = request.circuit.netlist()?;
    let record = NetlistRecord::from_netlist(&netlist);
    let structural = lint_structure(&record);
    if !structural.is_empty() {
        return Err(VerifyError::Lint(structural));
    }
    let capacitance = CapacitanceModel::default();
    let table = GateEnergyTable::for_circuit(request.model, &capacitance, &netlist)
        .map_err(VerifyError::Crypto)?;
    let facts = EnergyFacts::from_table(&table, &netlist, request.tolerance);
    let energy = lint_energy(&record, &facts, None);
    if !energy.is_empty() {
        return Err(VerifyError::Lint(energy));
    }
    let report = prove_record(&request.circuit, &netlist, &record, obs)?;
    Ok(Certificate {
        circuit: request.circuit.name(),
        model: facts.model,
        gate_digest: record.digest(),
        record,
        signatures: report.signatures,
        sat_counts: report.sat_counts,
        energy_digest: facts.digest,
        tolerance: request.tolerance,
        events: facts.rows,
    })
}

impl Certificate {
    /// Serializes the certificate to its canonical text form, including the
    /// trailing checksum line.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC} {CERT_VERSION}");
        let _ = writeln!(s, "circuit {}", self.circuit);
        let _ = writeln!(s, "model {}", self.model);
        let _ = writeln!(s, "inputs {}", self.record.input_count);
        let _ = writeln!(s, "gates {}", self.record.gates.len());
        let _ = writeln!(s, "outputs {}", self.record.outputs.len());
        for gate in &self.record.gates {
            let _ = write!(
                s,
                "gate {} {} {:04x} {:04x} {}",
                gate.cell, gate.rail, gate.rails[0], gate.rails[1], gate.out
            );
            for &input in &gate.inputs {
                let _ = write!(s, " {input}");
            }
            s.push('\n');
        }
        for &output in &self.record.outputs {
            let _ = writeln!(s, "out {output}");
        }
        for (index, (signature, count)) in self.signatures.iter().zip(&self.sat_counts).enumerate()
        {
            let _ = writeln!(s, "output {index} {signature:016x} {count}");
        }
        for (cell, events) in &self.events {
            let _ = write!(s, "event {cell}");
            for energy in events {
                let _ = write!(s, " {:016x}", energy.to_bits());
            }
            s.push('\n');
        }
        let _ = writeln!(
            s,
            "energy {:016x} {:016x}",
            self.energy_digest,
            self.tolerance.to_bits()
        );
        let _ = writeln!(s, "verdict {CLEAN_VERDICT}");
        let _ = writeln!(s, "gate_digest {:016x}", self.gate_digest);
        let checksum = fnv1a64(s.as_bytes());
        let _ = writeln!(s, "checksum {checksum:016x}");
        s
    }

    /// Parses certificate text, verifying the trailing checksum first —
    /// any corrupted byte fails here before a single field is trusted.
    ///
    /// # Errors
    ///
    /// [`VerifyError::ChecksumMismatch`] on corruption,
    /// [`VerifyError::MalformedCertificate`] on format violations.
    pub fn parse(text: &str) -> crate::Result<Self> {
        let body = verify_checksum(text)?;
        let mut lines = LineCursor::new(body);
        let header = lines.expect_prefixed(MAGIC)?;
        if header.trim() != CERT_VERSION.to_string() {
            return Err(lines.malformed_at(format!(
                "unsupported certificate version '{}'",
                header.trim()
            )));
        }
        let circuit = lines.expect_prefixed("circuit")?.trim().to_string();
        let model = lines.expect_prefixed("model")?.trim().to_string();
        let input_count: u32 = lines.parse_field("inputs")?;
        let gate_count: usize = lines.parse_field("gates")?;
        let output_count: usize = lines.parse_field("outputs")?;

        let mut gates = Vec::with_capacity(gate_count);
        for _ in 0..gate_count {
            let rest = lines.expect_prefixed("gate")?;
            let mut fields = rest.split_whitespace();
            let cell = lines.parse_token(fields.next(), "cell index")?;
            let rail = lines.parse_token(fields.next(), "rail selector")?;
            let plain = lines.parse_hex16(fields.next(), "plain rail table")?;
            let complement = lines.parse_hex16(fields.next(), "complement rail table")?;
            let out = lines.parse_token(fields.next(), "output signal")?;
            let inputs: Vec<u32> = fields
                .map(|token| lines.parse_token(Some(token), "input signal"))
                .collect::<crate::Result<_>>()?;
            gates.push(GateRecord {
                cell,
                rail,
                rails: [plain, complement],
                inputs,
                out,
            });
        }
        let mut outputs = Vec::with_capacity(output_count);
        for _ in 0..output_count {
            outputs.push(lines.parse_field("out")?);
        }
        let mut signatures = Vec::with_capacity(output_count);
        let mut sat_counts = Vec::with_capacity(output_count);
        for index in 0..output_count {
            let rest = lines.expect_prefixed("output")?;
            let mut fields = rest.split_whitespace();
            let claimed: usize = lines.parse_token(fields.next(), "output index")?;
            if claimed != index {
                return Err(lines.malformed_at(format!(
                    "output claims out of order: expected {index}, found {claimed}"
                )));
            }
            signatures.push(lines.parse_hex64(fields.next(), "BDD signature")?);
            sat_counts.push(lines.parse_token(fields.next(), "model count")?);
        }
        let mut events = Vec::new();
        while lines.peek_is("event") {
            let rest = lines.expect_prefixed("event")?;
            let mut fields = rest.split_whitespace();
            let cell: u8 = lines.parse_token(fields.next(), "cell index")?;
            let row: Vec<f64> = fields
                .map(|token| {
                    lines
                        .parse_hex64(Some(token), "event energy")
                        .map(f64::from_bits)
                })
                .collect::<crate::Result<_>>()?;
            events.push((cell, row));
        }
        let rest = lines.expect_prefixed("energy")?;
        let mut fields = rest.split_whitespace();
        let energy_digest = lines.parse_hex64(fields.next(), "energy digest")?;
        let tolerance = f64::from_bits(lines.parse_hex64(fields.next(), "tolerance")?);
        let verdict = lines.expect_prefixed("verdict")?.trim().to_string();
        if verdict != CLEAN_VERDICT {
            return Err(lines.malformed_at(format!("unexpected verdict '{verdict}'")));
        }
        let digest_line = lines.expect_prefixed("gate_digest")?;
        let gate_digest = lines.parse_hex64(Some(digest_line.trim()), "gate digest")?;
        lines.expect_end()?;
        Ok(Certificate {
            circuit,
            model,
            record: NetlistRecord {
                input_count,
                gates,
                outputs,
            },
            gate_digest,
            signatures,
            sat_counts,
            energy_digest,
            tolerance,
            events,
        })
    }

    /// `true` when a live energy table's digest matches the certificate's
    /// commitment (the capture/attack layers use this to tie traces to the
    /// certified model).
    pub fn matches_energy_digest(&self, digest: u64) -> bool {
        self.energy_digest == digest
    }
}

/// Replays a certificate from its text alone: checksum, gate-list digest,
/// structural and energy lints, and the symbolic reconstruction of every
/// output function, whose canonical signature and model count must equal
/// the claims.  No synthesis or cell-simulation code runs.
///
/// # Errors
///
/// Fails closed: any corrupted byte, failing lint, or diverging replayed
/// claim yields an error.
pub fn check_certificate(text: &str) -> crate::Result<CheckReport> {
    let certificate = Certificate::parse(text)?;
    let actual = certificate.record.digest();
    if actual != certificate.gate_digest {
        return Err(VerifyError::GateDigestMismatch {
            expected: certificate.gate_digest,
            actual,
        });
    }
    let structural = lint_structure(&certificate.record);
    if !structural.is_empty() {
        return Err(VerifyError::Lint(structural));
    }
    let facts = EnergyFacts {
        model: certificate.model.clone(),
        digest: certificate.energy_digest,
        tolerance: certificate.tolerance,
        rows: certificate.events.clone(),
    };
    let energy = lint_energy(&certificate.record, &facts, None);
    if !energy.is_empty() {
        return Err(VerifyError::Lint(energy));
    }
    let mut bdd = dpl_logic::Bdd::new();
    let outputs = netlist_bdds(&mut bdd, &certificate.record)?;
    if outputs.len() != certificate.signatures.len() {
        return Err(VerifyError::Structure {
            message: format!(
                "certificate claims {} outputs, netlist has {}",
                certificate.signatures.len(),
                outputs.len()
            ),
        });
    }
    for (output, (&node, (&expected_sig, &expected_count))) in outputs
        .iter()
        .zip(certificate.signatures.iter().zip(&certificate.sat_counts))
        .enumerate()
    {
        let actual_sig = bdd_signature(&bdd, node);
        if actual_sig != expected_sig {
            return Err(VerifyError::SignatureMismatch {
                output,
                expected: expected_sig,
                actual: actual_sig,
            });
        }
        let actual_count = bdd.sat_count(node, certificate.record.input_count as usize);
        if actual_count != expected_count {
            return Err(VerifyError::SatCountMismatch {
                output,
                expected: expected_count,
                actual: actual_count,
            });
        }
    }
    Ok(CheckReport {
        circuit: certificate.circuit,
        model: certificate.model,
        inputs: certificate.record.input_count,
        gates: certificate.record.gates.len(),
        outputs: outputs.len(),
        bdd_nodes: outputs.iter().map(|&node| bdd.node_count(node)).sum(),
    })
}

/// Splits off and verifies the trailing checksum line, returning the body
/// it covers.
fn verify_checksum(text: &str) -> crate::Result<&str> {
    let position = text
        .rfind("checksum ")
        .ok_or(VerifyError::MalformedCertificate {
            line: 0,
            message: "missing checksum line".to_string(),
        })?;
    if position != 0 && text.as_bytes()[position - 1] != b'\n' {
        return Err(VerifyError::MalformedCertificate {
            line: 0,
            message: "checksum marker is not at a line start".to_string(),
        });
    }
    let body = &text[..position];
    // The trailing line must be byte-for-byte canonical — exactly
    // `checksum ` + 16 lowercase hex digits + `\n` — so that flips
    // `from_str_radix` would forgive (hex-digit case, whitespace mangling
    // of the final newline) still fail closed.
    let digits = text[position..]
        .strip_prefix("checksum ")
        .and_then(|rest| rest.strip_suffix('\n'))
        .filter(|hex| {
            hex.len() == 16
                && hex
                    .bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        })
        .ok_or(VerifyError::MalformedCertificate {
            line: 0,
            message: "non-canonical checksum line".to_string(),
        })?;
    let expected =
        u64::from_str_radix(digits, 16).map_err(|_| VerifyError::MalformedCertificate {
            line: 0,
            message: format!("unreadable checksum '{digits}'"),
        })?;
    let actual = fnv1a64(body.as_bytes());
    if expected != actual {
        return Err(VerifyError::ChecksumMismatch { expected, actual });
    }
    Ok(body)
}

/// A strict sequential line reader with 1-based positions for error
/// reporting.
struct LineCursor<'a> {
    lines: std::iter::Peekable<std::str::Lines<'a>>,
    position: usize,
}

impl<'a> LineCursor<'a> {
    fn new(body: &'a str) -> Self {
        LineCursor {
            lines: body.lines().peekable(),
            position: 0,
        }
    }

    fn expect_prefixed(&mut self, keyword: &str) -> crate::Result<&'a str> {
        self.position += 1;
        let line = self
            .lines
            .next()
            .ok_or_else(|| self.malformed_at(format!("missing '{keyword}' line")))?;
        line.strip_prefix(keyword)
            .ok_or_else(|| self.malformed_at(format!("expected '{keyword}', found '{line}'")))
    }

    fn peek_is(&mut self, keyword: &str) -> bool {
        self.lines
            .peek()
            .is_some_and(|line| line.starts_with(keyword))
    }

    fn expect_end(&mut self) -> crate::Result<()> {
        match self.lines.next() {
            None => Ok(()),
            Some(line) => Err(self.malformed_at(format!("trailing content '{line}'"))),
        }
    }

    fn malformed_at(&self, message: String) -> VerifyError {
        VerifyError::MalformedCertificate {
            line: self.position,
            message,
        }
    }

    fn parse_field<T: std::str::FromStr>(&mut self, keyword: &str) -> crate::Result<T> {
        let rest = self.expect_prefixed(keyword)?;
        rest.trim()
            .parse()
            .map_err(|_| self.malformed_at(format!("unreadable {keyword} value '{}'", rest.trim())))
    }

    fn parse_token<T: std::str::FromStr>(
        &self,
        token: Option<&str>,
        what: &str,
    ) -> crate::Result<T> {
        let token = token.ok_or_else(|| self.malformed_at(format!("missing {what}")))?;
        token
            .parse()
            .map_err(|_| self.malformed_at(format!("unreadable {what} '{token}'")))
    }

    fn parse_hex16(&self, token: Option<&str>, what: &str) -> crate::Result<u16> {
        let token = token.ok_or_else(|| self.malformed_at(format!("missing {what}")))?;
        u16::from_str_radix(token, 16)
            .map_err(|_| self.malformed_at(format!("unreadable {what} '{token}'")))
    }

    fn parse_hex64(&self, token: Option<&str>, what: &str) -> crate::Result<u64> {
        let token = token.ok_or_else(|| self.malformed_at(format!("missing {what}")))?;
        u64::from_str_radix(token, 16)
            .map_err(|_| self.malformed_at(format!("unreadable {what} '{token}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sbox_certificate() -> Certificate {
        let request = CertificateRequest::parse("sbox", "enhanced").unwrap();
        emit_certificate(&request).unwrap()
    }

    #[test]
    fn emit_parse_round_trip() {
        let certificate = sbox_certificate();
        let text = certificate.to_text();
        let parsed = Certificate::parse(&text).unwrap();
        assert_eq!(parsed, certificate);
    }

    #[test]
    fn check_replays_an_emitted_certificate() {
        let certificate = sbox_certificate();
        let report = check_certificate(&certificate.to_text()).unwrap();
        assert_eq!(report.circuit, "sbox");
        assert_eq!(report.model, "enhanced");
        assert_eq!(report.inputs, 8);
        assert_eq!(report.outputs, 4);
        assert!(report.bdd_nodes > 0);
    }

    #[test]
    fn emit_refuses_to_certify_a_leaky_model() {
        let request = CertificateRequest::parse("sbox", "genuine").unwrap();
        let result = emit_certificate(&request);
        assert!(
            matches!(&result, Err(VerifyError::Lint(errors)) if errors
                .iter()
                .all(|e| matches!(e, crate::LintError::NonConstantEvents { .. }))),
            "expected NonConstantEvents lint failures, got {result:?}"
        );
    }

    #[test]
    fn fully_connected_and_enhanced_models_certify() {
        for model in ["fc", "enhanced"] {
            let request = CertificateRequest::parse("oai22", model).unwrap();
            let certificate = emit_certificate(&request).unwrap();
            check_certificate(&certificate.to_text()).unwrap();
        }
    }

    #[test]
    fn a_tampered_claim_fails_even_with_a_fixed_checksum() {
        // An attacker who re-computes the checksum after tampering must
        // still be caught by the replay.
        let mut certificate = sbox_certificate();
        certificate.signatures[2] ^= 1;
        let text = certificate.to_text(); // fresh, valid checksum
        let result = check_certificate(&text);
        assert!(matches!(
            result,
            Err(VerifyError::SignatureMismatch { output: 2, .. })
        ));
    }

    #[test]
    fn a_tampered_sat_count_fails_the_replay() {
        let mut certificate = sbox_certificate();
        certificate.sat_counts[0] += 1;
        let result = check_certificate(&certificate.to_text());
        assert!(matches!(
            result,
            Err(VerifyError::SatCountMismatch { output: 0, .. })
        ));
    }

    #[test]
    fn a_tampered_gate_list_fails_the_digest() {
        let mut certificate = sbox_certificate();
        certificate.record.gates[0].rail ^= 1;
        let result = check_certificate(&certificate.to_text());
        assert!(matches!(
            result,
            Err(VerifyError::GateDigestMismatch { .. })
        ));
    }

    #[test]
    fn digest_commitment_is_checkable() {
        let certificate = sbox_certificate();
        assert!(certificate.matches_energy_digest(certificate.energy_digest));
        assert!(!certificate.matches_energy_digest(certificate.energy_digest ^ 1));
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(matches!(
            CertificateRequest::parse("nope", "enhanced"),
            Err(VerifyError::UnknownCircuit { .. })
        ));
        assert!(matches!(
            CertificateRequest::parse("sbox", "nope"),
            Err(VerifyError::UnknownModel { .. })
        ));
    }

    #[test]
    fn truncated_certificates_fail_closed() {
        let text = sbox_certificate().to_text();
        // Drop the last line entirely.
        let truncated = &text[..text.rfind("checksum").unwrap()];
        assert!(Certificate::parse(truncated).is_err());
        // Drop the second half of the body (at a line boundary, so the
        // checksum line itself still parses) but keep the checksum line.
        let keep = text.rfind("checksum").unwrap();
        let cut = text[..keep / 2].rfind('\n').unwrap() + 1;
        let mangled = format!("{}{}", &text[..cut], &text[keep..]);
        assert!(matches!(
            Certificate::parse(&mangled),
            Err(VerifyError::ChecksumMismatch { .. })
        ));
    }
}

//! The raw, untrusted netlist form the linter and the certificate checker
//! operate on.
//!
//! `dpl-crypto`'s [`GateNetlist`] enforces its invariants at construction
//! time, so a value of that type can never exhibit the defects the DPL
//! linter exists to catch.  Certificates therefore embed a *record* form —
//! plain integers, exactly what a netlist interchange file would carry — and
//! every structural claim is re-established from scratch when a certificate
//! is checked.  Tests mutate records freely to prove the linter rejects each
//! class of defect.

use dpl_core::GateKind;
use dpl_crypto::GateNetlist;
use dpl_store::format::fnv1a64;

/// Rail selector: the gate consumes the plain (true) output of the cell.
pub const RAIL_PLAIN: u8 = 0;
/// Rail selector: the gate consumes the complement (false) output.
pub const RAIL_COMPLEMENT: u8 = 1;

/// One differential gate instance as claimed by a certificate.
///
/// `rails` carries the truth tables of the cell's two outputs (plain and
/// complement), masked to the cell's arity.  A well-formed record satisfies
/// `rails[0] == kind.truth_table()` and `rails[1] == !rails[0]` — the linter
/// checks both, so a record whose rails disagree with the claimed cell
/// (an unknown cell) or with each other (an unbalanced differential pair)
/// is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateRecord {
    /// Library index of the claimed cell ([`GateKind::index`]).
    pub cell: u8,
    /// Which rail the gate's output wire carries ([`RAIL_PLAIN`] or
    /// [`RAIL_COMPLEMENT`]).
    pub rail: u8,
    /// Claimed truth tables of the plain and complement rails, masked to
    /// `2^arity` bits.
    pub rails: [u16; 2],
    /// Input signal ids, in cell slot order.
    pub inputs: Vec<u32>,
    /// Output signal id written by this gate.
    pub out: u32,
}

impl GateRecord {
    /// The truth table of the rail this gate's output wire actually
    /// carries.
    pub fn consumed_table(&self) -> u16 {
        self.rails[usize::from(self.rail != RAIL_PLAIN)]
    }
}

/// A full netlist in record form: primary inputs `0..input_count`, a gate
/// list, and the signals exposed as circuit outputs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetlistRecord {
    /// Number of primary input signals.
    pub input_count: u32,
    /// Gate instances, in claimed evaluation order.
    pub gates: Vec<GateRecord>,
    /// Output signal ids.
    pub outputs: Vec<u32>,
}

impl NetlistRecord {
    /// Extracts the record form of a synthesized netlist.
    pub fn from_netlist(netlist: &GateNetlist) -> Self {
        let gates = netlist
            .gates()
            .iter()
            .map(|gate| {
                let kind = gate.op.kind();
                let arity = kind.arity();
                let mask = table_mask(arity);
                let plain = kind.truth_table() & mask;
                GateRecord {
                    cell: kind.index() as u8,
                    rail: if gate.op.is_negated() {
                        RAIL_COMPLEMENT
                    } else {
                        RAIL_PLAIN
                    },
                    rails: [plain, !plain & mask],
                    inputs: gate.input_signals()[..arity]
                        .iter()
                        .map(|s| s.index() as u32)
                        .collect(),
                    out: gate.out.index() as u32,
                }
            })
            .collect();
        NetlistRecord {
            input_count: netlist.input_count() as u32,
            gates,
            outputs: netlist.outputs().iter().map(|s| s.index() as u32).collect(),
        }
    }

    /// A 64-bit FNV-1a digest over the record's canonical byte encoding.
    /// This is the gate-list digest a certificate commits to.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(16 + self.gates.len() * 16);
        bytes.extend_from_slice(&self.input_count.to_le_bytes());
        bytes.extend_from_slice(&(self.gates.len() as u32).to_le_bytes());
        for gate in &self.gates {
            bytes.push(gate.cell);
            bytes.push(gate.rail);
            bytes.extend_from_slice(&gate.rails[0].to_le_bytes());
            bytes.extend_from_slice(&gate.rails[1].to_le_bytes());
            bytes.push(gate.inputs.len() as u8);
            for &input in &gate.inputs {
                bytes.extend_from_slice(&input.to_le_bytes());
            }
            bytes.extend_from_slice(&gate.out.to_le_bytes());
        }
        bytes.extend_from_slice(&(self.outputs.len() as u32).to_le_bytes());
        for &out in &self.outputs {
            bytes.extend_from_slice(&out.to_le_bytes());
        }
        fnv1a64(&bytes)
    }

    /// The library kinds instantiated by the record's gates (in claimed-cell
    /// terms; unknown indices are skipped — the linter reports those).
    pub fn kinds_claimed(&self) -> Vec<GateKind> {
        let mut seen = [false; GateKind::COUNT];
        let mut kinds = Vec::new();
        for gate in &self.gates {
            let index = usize::from(gate.cell);
            if index < GateKind::COUNT && !seen[index] {
                seen[index] = true;
                kinds.push(GateKind::all()[index]);
            }
        }
        kinds
    }
}

/// The `2^arity`-bit mask truth tables of `arity`-input cells live under.
pub fn table_mask(arity: usize) -> u16 {
    if arity >= 4 {
        u16::MAX
    } else {
        (1u16 << (1usize << arity)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_the_sbox_netlist() {
        let netlist = dpl_crypto::synthesize_sbox_with_key().unwrap();
        let record = NetlistRecord::from_netlist(&netlist);
        assert_eq!(record.input_count, 8);
        assert_eq!(record.gates.len(), netlist.gate_count());
        assert_eq!(record.outputs.len(), 4);
        for (gate, raw) in netlist.gates().iter().zip(&record.gates) {
            assert_eq!(raw.cell as usize, gate.op.index());
            assert_eq!(raw.inputs.len(), gate.op.arity());
            // The consumed rail's table is the gate's actual function.
            for assignment in 0..(1u64 << gate.op.arity()) {
                let expected = gate.op.eval_assignment(assignment);
                assert_eq!(
                    (raw.consumed_table() >> assignment) & 1 == 1,
                    expected,
                    "rail table mismatch at assignment {assignment}"
                );
            }
        }
    }

    #[test]
    fn digest_is_sensitive_to_every_field() {
        let netlist = dpl_crypto::synthesize_library_circuit(GateKind::And2).unwrap();
        let record = NetlistRecord::from_netlist(&netlist);
        let base = record.digest();
        let mut m = record.clone();
        m.gates[0].rail ^= 1;
        assert_ne!(m.digest(), base);
        let mut m = record.clone();
        m.gates[2].inputs[0] ^= 1;
        assert_ne!(m.digest(), base);
        let mut m = record.clone();
        m.outputs[0] ^= 1;
        assert_ne!(m.digest(), base);
        let mut m = record.clone();
        m.input_count += 1;
        assert_ne!(m.digest(), base);
    }

    #[test]
    fn mask_matches_arity() {
        assert_eq!(table_mask(1), 0b11);
        assert_eq!(table_mask(2), 0xF);
        assert_eq!(table_mask(3), 0xFF);
        assert_eq!(table_mask(4), 0xFFFF);
    }
}
